// Tests for src/metrics: counter/histogram semantics under concurrency,
// quantile interpolation, registry create-or-get, and the deterministic
// text exposition the serving layer dumps.

#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "metrics/metrics.h"

namespace mube {
namespace {

// ----------------------------------------------------------------Counter --

TEST(CounterTest, StartsAtZeroAndAccumulates) {
  Counter counter;
  EXPECT_EQ(counter.Value(), 0u);
  counter.Increment();
  counter.Increment(41);
  EXPECT_EQ(counter.Value(), 42u);
}

TEST(CounterTest, ConcurrentIncrementsAllLand) {
  Counter counter;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kPerThread; ++i) counter.Increment();
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(counter.Value(),
            static_cast<uint64_t>(kThreads) * kPerThread);
}

// --------------------------------------------------------------Histogram --

TEST(HistogramTest, BucketsCountAndSum) {
  Histogram histogram({1.0, 10.0, 100.0});
  histogram.Observe(0.5);    // bucket 0
  histogram.Observe(1.0);    // bucket 0 (le = upper bound inclusive)
  histogram.Observe(5.0);    // bucket 1
  histogram.Observe(1000.0); // +Inf bucket
  const Histogram::Snapshot snap = histogram.TakeSnapshot();
  ASSERT_EQ(snap.upper_bounds.size(), 3u);
  ASSERT_EQ(snap.bucket_counts.size(), 4u);  // +Inf appended
  EXPECT_EQ(snap.bucket_counts[0], 2u);
  EXPECT_EQ(snap.bucket_counts[1], 1u);
  EXPECT_EQ(snap.bucket_counts[2], 0u);
  EXPECT_EQ(snap.bucket_counts[3], 1u);
  EXPECT_EQ(snap.count, 4u);
  EXPECT_DOUBLE_EQ(snap.sum, 1006.5);
}

TEST(HistogramTest, QuantileInterpolatesAndClamps) {
  Histogram histogram({10.0, 20.0});
  EXPECT_DOUBLE_EQ(histogram.Quantile(0.5), 0.0);  // empty
  for (int i = 0; i < 10; ++i) histogram.Observe(5.0);   // bucket (0,10]
  for (int i = 0; i < 10; ++i) histogram.Observe(15.0);  // bucket (10,20]
  // Median sits at the boundary between the two buckets.
  EXPECT_NEAR(histogram.Quantile(0.5), 10.0, 1.0);
  EXPECT_LE(histogram.Quantile(0.99), 20.0);
  // Observations beyond the last finite bound clamp to it.
  histogram.Observe(1e9);
  EXPECT_DOUBLE_EQ(histogram.Quantile(1.0), 20.0);
}

TEST(HistogramTest, ExponentialBuckets) {
  const std::vector<double> bounds =
      Histogram::ExponentialBuckets(1.0, 2.0, 4);
  ASSERT_EQ(bounds.size(), 4u);
  EXPECT_DOUBLE_EQ(bounds[0], 1.0);
  EXPECT_DOUBLE_EQ(bounds[1], 2.0);
  EXPECT_DOUBLE_EQ(bounds[2], 4.0);
  EXPECT_DOUBLE_EQ(bounds[3], 8.0);
}

TEST(HistogramTest, ConcurrentObservationsAllLand) {
  Histogram histogram(Histogram::ExponentialBuckets(1.0, 2.0, 8));
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&histogram, t] {
      for (int i = 0; i < kPerThread; ++i) {
        histogram.Observe(static_cast<double>(t + 1));
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(histogram.TakeSnapshot().count,
            static_cast<uint64_t>(kThreads) * kPerThread);
}

// ------------------------------------------------------------------Gauge --

TEST(GaugeTest, SetAddAndValue) {
  Gauge gauge;
  EXPECT_EQ(gauge.Value(), 0.0);
  gauge.Set(42.5);
  EXPECT_EQ(gauge.Value(), 42.5);
  gauge.Add(-2.5);
  EXPECT_EQ(gauge.Value(), 40.0);
  gauge.Set(7.0);  // Set replaces, never accumulates
  EXPECT_EQ(gauge.Value(), 7.0);
}

TEST(GaugeTest, ConcurrentAddsAllLand) {
  Gauge gauge;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&gauge] {
      for (int i = 0; i < kPerThread; ++i) gauge.Add(1.0);
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(gauge.Value(), static_cast<double>(kThreads) * kPerThread);
}

// ---------------------------------------------------------------Registry --

TEST(MetricsRegistryTest, CreateOrGetReturnsStableHandles) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("requests_total", "requests");
  Counter* b = registry.GetCounter("requests_total");
  EXPECT_EQ(a, b);
  a->Increment();
  EXPECT_EQ(b->Value(), 1u);

  Histogram* h1 = registry.GetHistogram("latency", {1.0, 2.0});
  Histogram* h2 = registry.GetHistogram("latency", {99.0});  // bounds ignored
  EXPECT_EQ(h1, h2);
  EXPECT_EQ(h2->upper_bounds(), (std::vector<double>{1.0, 2.0}));
  EXPECT_EQ(registry.size(), 2u);
}

TEST(MetricsRegistryDeathTest, TypeMismatchIsAWiringBug) {
  MetricsRegistry registry;
  registry.GetCounter("m");
  EXPECT_DEATH(registry.GetHistogram("m", {1.0}), "");
  EXPECT_DEATH(registry.GetGauge("m"), "");
}

TEST(MetricsRegistryTest, GaugeHandlesAndExposition) {
  MetricsRegistry registry;
  Gauge* a = registry.GetGauge("index_memory_bytes", "resident bytes");
  Gauge* b = registry.GetGauge("index_memory_bytes");
  EXPECT_EQ(a, b);
  a->Set(1536.0);
  const std::string text = registry.Expose();
  EXPECT_NE(text.find("# TYPE index_memory_bytes gauge"), std::string::npos);
  EXPECT_NE(text.find("# HELP index_memory_bytes resident bytes"),
            std::string::npos);
  EXPECT_NE(text.find("index_memory_bytes 1536"), std::string::npos);
}

TEST(MetricsRegistryDeathTest, BadNamesAreRejected) {
  MetricsRegistry registry;
  EXPECT_DEATH(registry.GetCounter("has space"), "");
  EXPECT_DEATH(registry.GetCounter("9starts_with_digit"), "");
  EXPECT_DEATH(registry.GetCounter(""), "");
}

TEST(MetricsRegistryTest, ExpositionIsDeterministicAndSorted) {
  // Two registries populated in different orders must render identically.
  MetricsRegistry first;
  first.GetCounter("zeta_total", "last alphabetically")->Increment(3);
  first.GetHistogram("alpha_seconds", {0.5, 1.0}, "first")->Observe(0.25);

  MetricsRegistry second;
  second.GetHistogram("alpha_seconds", {0.5, 1.0}, "first")->Observe(0.25);
  second.GetCounter("zeta_total", "last alphabetically")->Increment(3);

  EXPECT_EQ(first.Expose(), second.Expose());

  const std::string text = first.Expose();
  // Name-sorted: the histogram renders before the counter.
  EXPECT_LT(text.find("alpha_seconds"), text.find("zeta_total"));
  EXPECT_NE(text.find("# TYPE alpha_seconds histogram"), std::string::npos);
  EXPECT_NE(text.find("# TYPE zeta_total counter"), std::string::npos);
  EXPECT_NE(text.find("# HELP zeta_total last alphabetically"),
            std::string::npos);
  EXPECT_NE(text.find("zeta_total 3"), std::string::npos);
  // Histogram buckets are cumulative and always end with +Inf = count.
  EXPECT_NE(text.find("alpha_seconds_bucket{le=\"0.5\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("alpha_seconds_bucket{le=\"1\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("alpha_seconds_bucket{le=\"+Inf\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("alpha_seconds_count 1"), std::string::npos);
  EXPECT_NE(text.find("alpha_seconds_sum 0.25"), std::string::npos);
}

}  // namespace
}  // namespace mube
