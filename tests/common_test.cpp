// Unit and property tests for src/common: Status/Result, PRNG and samplers,
// hashing, string utilities.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include <gtest/gtest.h>

#include "common/det.h"
#include "common/flat_map.h"
#include "common/hash.h"
#include "common/random.h"
#include "common/status.h"
#include "common/string_util.h"

namespace mube {
namespace {

// ---------------------------------------------------------------- Status --

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.message(), "");
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::InvalidArgument("bad theta");
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsInvalidArgument());
  EXPECT_EQ(st.message(), "bad theta");
  EXPECT_EQ(st.ToString(), "Invalid argument: bad theta");
}

TEST(StatusTest, CopyPreservesState) {
  Status st = Status::NotFound("x");
  Status copy = st;        // copy ctor
  Status assigned;
  assigned = st;           // copy assignment
  EXPECT_TRUE(copy.IsNotFound());
  EXPECT_TRUE(assigned.IsNotFound());
  EXPECT_EQ(copy, st);
  EXPECT_EQ(assigned, st);
}

TEST(StatusTest, MoveLeavesSourceReusable) {
  Status st = Status::Internal("boom");
  Status moved = std::move(st);
  EXPECT_FALSE(moved.ok());
  EXPECT_EQ(moved.code(), StatusCode::kInternal);
}

TEST(StatusTest, AllFactoriesProduceMatchingCodes) {
  EXPECT_EQ(Status::InvalidArgument("").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Unimplemented("").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::IoError("").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::Infeasible("").code(), StatusCode::kInfeasible);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie(), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  MUBE_ASSIGN_OR_RETURN(int h, Half(x));
  MUBE_ASSIGN_OR_RETURN(int q, Half(h));
  return q;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  Result<int> ok = Quarter(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.ValueOrDie(), 2);

  Result<int> err = Quarter(6);  // 6/2 = 3 is odd
  ASSERT_FALSE(err.ok());
  EXPECT_TRUE(err.status().IsInvalidArgument());
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::OutOfRange("negative");
  return Status::OK();
}

Status CheckAll(int a, int b) {
  MUBE_RETURN_IF_ERROR(FailIfNegative(a));
  MUBE_RETURN_IF_ERROR(FailIfNegative(b));
  return Status::OK();
}

TEST(ResultTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(CheckAll(1, 2).ok());
  EXPECT_FALSE(CheckAll(1, -2).ok());
  EXPECT_FALSE(CheckAll(-1, 2).ok());
}

// ------------------------------------------------------------------- Rng --

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int differing = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() != b.Next()) ++differing;
  }
  EXPECT_GT(differing, 60);
}

TEST(RngTest, UniformRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Uniform(13), 13u);
  }
}

TEST(RngTest, UniformCoversRange) {
  Rng rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.Uniform(10));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(3);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformDoubleInHalfOpenUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, GaussianMomentsRoughlyCorrect) {
  Rng rng(17);
  const int n = 200000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Gaussian(10.0, 2.0);
    sum += v;
    sum_sq += v * v;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.1);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(19);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(23);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> shuffled = v;
  rng.Shuffle(&shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(RngTest, SampleWithoutReplacementDistinctAndInRange) {
  Rng rng(29);
  for (int round = 0; round < 50; ++round) {
    std::vector<size_t> sample = rng.SampleWithoutReplacement(100, 30);
    ASSERT_EQ(sample.size(), 30u);
    std::set<size_t> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), 30u);
    for (size_t s : sample) EXPECT_LT(s, 100u);
  }
}

TEST(RngTest, SampleWithoutReplacementFullSet) {
  Rng rng(31);
  std::vector<size_t> sample = rng.SampleWithoutReplacement(10, 10);
  std::set<size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 10u);
}

// ------------------------------------------------------------------ Zipf --

TEST(ZipfTest, RanksWithinBounds) {
  ZipfSampler zipf(50, 1.0);
  Rng rng(37);
  for (int i = 0; i < 10000; ++i) {
    const size_t rank = zipf.Sample(&rng);
    EXPECT_GE(rank, 1u);
    EXPECT_LE(rank, 50u);
  }
}

TEST(ZipfTest, LowRanksDominate) {
  ZipfSampler zipf(100, 1.0);
  Rng rng(41);
  int rank1 = 0, rank50 = 0;
  for (int i = 0; i < 100000; ++i) {
    const size_t rank = zipf.Sample(&rng);
    if (rank == 1) ++rank1;
    if (rank == 50) ++rank50;
  }
  // P(rank=1) / P(rank=50) = 50 under skew 1.
  EXPECT_GT(rank1, rank50 * 20);
}

TEST(ZipfTest, SkewZeroPointFiveIsFlatterThanTwo) {
  Rng rng1(43), rng2(43);
  ZipfSampler flat(100, 0.5), steep(100, 2.0);
  double flat_sum = 0, steep_sum = 0;
  for (int i = 0; i < 20000; ++i) {
    flat_sum += static_cast<double>(flat.Sample(&rng1));
    steep_sum += static_cast<double>(steep.Sample(&rng2));
  }
  EXPECT_GT(flat_sum, steep_sum * 2);
}

// ------------------------------------------------------------------ Hash --

TEST(HashTest, Mix64IsDeterministicAndSpreads) {
  EXPECT_EQ(Mix64(1), Mix64(1));
  EXPECT_NE(Mix64(1), Mix64(2));
  // Adjacent inputs should differ in many bits.
  const uint64_t diff = Mix64(100) ^ Mix64(101);
  EXPECT_GT(std::popcount(diff), 16);
}

TEST(HashTest, HashBytesSeedChangesValue) {
  EXPECT_NE(HashBytes("abc", 0), HashBytes("abc", 1));
  EXPECT_EQ(HashBytes("abc", 5), HashBytes("abc", 5));
  EXPECT_NE(HashBytes("abc"), HashBytes("abd"));
}

TEST(HashTest, SetFingerprintOrderIndependent) {
  EXPECT_EQ(SetFingerprint({1, 2, 3}), SetFingerprint({3, 1, 2}));
  EXPECT_NE(SetFingerprint({1, 2, 3}), SetFingerprint({1, 2, 4}));
  EXPECT_NE(SetFingerprint({1, 2}), SetFingerprint({1, 2, 3}));
}

TEST(HashTest, HashFamilyMembersAreIndependentish) {
  HashFamily family(8, 99);
  EXPECT_EQ(family.size(), 8u);
  // Same key through different members gives different values.
  std::set<uint64_t> values;
  for (size_t i = 0; i < family.size(); ++i) values.insert(family.Hash(i, 7));
  EXPECT_EQ(values.size(), family.size());
  // Same (member, key) is stable.
  EXPECT_EQ(family.Hash(3, 1234), family.Hash(3, 1234));
}

TEST(HashTest, HashFamilySeedDeterminesFamily) {
  HashFamily a(4, 1), b(4, 1), c(4, 2);
  EXPECT_EQ(a.Hash(0, 55), b.Hash(0, 55));
  EXPECT_NE(a.Hash(0, 55), c.Hash(0, 55));
}

// ---------------------------------------------------------------- String --

TEST(StringUtilTest, ToLower) {
  EXPECT_EQ(ToLower("AbC dEf"), "abc def");
  EXPECT_EQ(ToLower(""), "");
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(Trim("  x  "), "x");
  EXPECT_EQ(Trim("x"), "x");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("\ta b\n"), "a b");
}

TEST(StringUtilTest, SplitKeepsEmptyPieces) {
  EXPECT_EQ(Split("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split("abc", ','), (std::vector<std::string>{"abc"}));
}

TEST(StringUtilTest, SplitAndTrimDropsEmpties) {
  EXPECT_EQ(SplitAndTrim(" a , ,b ", ','),
            (std::vector<std::string>{"a", "b"}));
}

TEST(StringUtilTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"x"}, ","), "x");
}

TEST(StringUtilTest, NormalizeAttributeName) {
  EXPECT_EQ(NormalizeAttributeName("First_Name "), "first name");
  EXPECT_EQ(NormalizeAttributeName("first  name"), "first name");
  EXPECT_EQ(NormalizeAttributeName("ISBN-13"), "isbn 13");
  EXPECT_EQ(NormalizeAttributeName("   "), "");
  EXPECT_EQ(NormalizeAttributeName("price"), "price");
}

TEST(StringUtilTest, NormalizedFormsCollide) {
  // The property the similarity layer relies on: spelling variants of the
  // same surface form normalize identically.
  EXPECT_EQ(NormalizeAttributeName("Author-Name"),
            NormalizeAttributeName("author_name"));
  EXPECT_EQ(NormalizeAttributeName("Publication Year"),
            NormalizeAttributeName("publication__year"));
}

TEST(StringUtilTest, StartsWith) {
  EXPECT_TRUE(StartsWith("source x", "source "));
  EXPECT_FALSE(StartsWith("sourc", "source"));
  EXPECT_TRUE(StartsWith("abc", ""));
}

// ------------------------------------------------------------------- det --

TEST(DetTest, SortedKeysAndItemsAreInsertionOrderInvariant) {
  // Two hash maps holding equal contents but built in different insertion
  // orders may iterate differently (bucket chains order by arrival; rehash
  // points differ) — the closest a standard build gets to "differently
  // seeded hash runs". The det helpers must erase that difference.
  std::unordered_map<int, std::string> forward;
  std::unordered_map<int, std::string> reverse;
  for (int i = 0; i < 200; ++i) forward[i] = std::to_string(i);
  for (int i = 199; i >= 0; --i) reverse[i] = std::to_string(i);
  EXPECT_EQ(det::SortedKeys(forward), det::SortedKeys(reverse));
  EXPECT_EQ(det::SortedItems(forward), det::SortedItems(reverse));
  const std::vector<int> keys = det::SortedKeys(forward);
  ASSERT_EQ(keys.size(), 200u);
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
  const auto items = det::SortedItems(forward);
  EXPECT_EQ(items.front().first, 0);
  EXPECT_EQ(items.back().second, "199");
}

TEST(DetTest, SortedValuesOverSets) {
  std::unordered_set<uint32_t> a;
  std::unordered_set<uint32_t> b;
  for (uint32_t v : {7u, 3u, 11u, 5u}) a.insert(v);
  for (uint32_t v : {5u, 11u, 3u, 7u}) b.insert(v);
  EXPECT_EQ(det::SortedValues(a), det::SortedValues(b));
  EXPECT_EQ(det::SortedValues(a), (std::vector<uint32_t>{3, 5, 7, 11}));
}

TEST(DetTest, EmptyContainersYieldEmptyVectors) {
  const std::unordered_map<int, int> empty_map;
  const std::unordered_set<int> empty_set;
  EXPECT_TRUE(det::SortedKeys(empty_map).empty());
  EXPECT_TRUE(det::SortedItems(empty_map).empty());
  EXPECT_TRUE(det::SortedValues(empty_set).empty());
}

// ---------------------------------------------------------------- FlatMap --

TEST(FlatMapTest, EmptyMapBasics) {
  FlatMap<int> map;
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.size(), 0u);
  EXPECT_EQ(map.Find(42), nullptr);
  EXPECT_FALSE(map.Erase(42));
  EXPECT_EQ(map.EraseUpTo(10), 0u);
  EXPECT_EQ(map.EraseIf([](uint64_t, int) { return true; }), 0u);
}

TEST(FlatMapTest, TryEmplaceConstructsOnlyOnInsert) {
  FlatMap<std::string> map;
  auto [first, inserted] = map.TryEmplace(7, "original");
  ASSERT_TRUE(inserted);
  EXPECT_EQ(*first, "original");
  // Second emplace for the same key must return the existing value and must
  // NOT construct/overwrite with the new arguments.
  auto [second, inserted_again] = map.TryEmplace(7, "clobber");
  EXPECT_FALSE(inserted_again);
  EXPECT_EQ(*second, "original");
  EXPECT_EQ(map.size(), 1u);
}

TEST(FlatMapTest, DifferentialAgainstUnorderedMapUnderChurn) {
  // The memo workload: interleaved insert / lookup / erase at high load,
  // including re-insertion of previously erased keys (the case tombstone
  // schemes degrade on and robin-hood backward-shift must get right).
  FlatMap<uint64_t> map;
  std::unordered_map<uint64_t, uint64_t> reference;
  Rng rng(99);
  for (int op = 0; op < 20'000; ++op) {
    const uint64_t key = rng.Uniform(512);  // small key space -> collisions
    const uint32_t action = static_cast<uint32_t>(rng.Uniform(10));
    if (action < 5) {  // insert
      const uint64_t value = rng.Next();
      auto [ptr, inserted] = map.TryEmplace(key, value);
      const auto [it, ref_inserted] = reference.try_emplace(key, value);
      ASSERT_EQ(inserted, ref_inserted);
      ASSERT_EQ(*ptr, it->second);
    } else if (action < 8) {  // lookup
      const uint64_t* found = map.Find(key);
      const auto it = reference.find(key);
      ASSERT_EQ(found != nullptr, it != reference.end());
      if (found != nullptr) {
        ASSERT_EQ(*found, it->second);
      }
    } else {  // erase
      ASSERT_EQ(map.Erase(key), reference.erase(key) > 0);
    }
    ASSERT_EQ(map.size(), reference.size());
  }
  // Full-content sweep at the end: every surviving entry agrees.
  size_t seen = 0;
  // Order-insensitive: each entry is checked against `reference` alone.
  map.ForEach([&](uint64_t key, const uint64_t& value) {  // NOLINT(det-iteration)
    const auto it = reference.find(key);
    ASSERT_NE(it, reference.end()) << key;
    ASSERT_EQ(value, it->second);
    ++seen;
  });
  EXPECT_EQ(seen, reference.size());
}

TEST(FlatMapTest, GrowthPreservesAllEntries) {
  FlatMap<uint64_t> map;
  constexpr uint64_t kCount = 10'000;  // forces many rehashes from capacity 16
  for (uint64_t i = 0; i < kCount; ++i) {
    auto [ptr, inserted] = map.TryEmplace(i * 0x9E3779B97F4A7C15ULL, i);
    ASSERT_TRUE(inserted);
    ASSERT_EQ(*ptr, i);
  }
  ASSERT_EQ(map.size(), kCount);
  for (uint64_t i = 0; i < kCount; ++i) {
    const uint64_t* found = map.Find(i * 0x9E3779B97F4A7C15ULL);
    ASSERT_NE(found, nullptr) << i;
    ASSERT_EQ(*found, i);
  }
}

TEST(FlatMapTest, EraseIfRemovesExactlyMatchingEntries) {
  // EraseIf may re-examine entries (backward shift across the wrap-around
  // boundary) but must erase each matching entry exactly once and never
  // skip one — checked here by exact count and surviving-set content.
  FlatMap<uint64_t> map;
  constexpr uint64_t kCount = 4096;
  for (uint64_t key = 0; key < kCount; ++key) map.TryEmplace(key, key);
  const size_t erased = map.EraseIf(
      [](uint64_t, const uint64_t& value) { return value % 3 == 0; });
  EXPECT_EQ(erased, (kCount + 2) / 3);
  EXPECT_EQ(map.size(), kCount - erased);
  for (uint64_t key = 0; key < kCount; ++key) {
    const uint64_t* found = map.Find(key);
    if (key % 3 == 0) {
      ASSERT_EQ(found, nullptr) << key;
    } else {
      ASSERT_NE(found, nullptr) << key;
      ASSERT_EQ(*found, key);
    }
  }
}

TEST(FlatMapTest, EraseIfSeesEachSurvivorAtLeastOnce) {
  // The documented purity contract: pred can be called more than once per
  // entry but every entry is examined. Count distinct keys presented.
  FlatMap<int> map;
  for (uint64_t key = 1; key <= 300; ++key) map.TryEmplace(key, 0);
  std::unordered_set<uint64_t> examined;
  map.EraseIf([&](uint64_t key, int) {
    examined.insert(key);
    return key % 7 == 0;  // pure: same answer on re-examination
  });
  EXPECT_EQ(examined.size(), 300u);
}

TEST(FlatMapTest, EraseUpToEvictsRequestedCount) {
  FlatMap<uint64_t> map;
  for (uint64_t key = 0; key < 100; ++key) map.TryEmplace(key, key);
  EXPECT_EQ(map.EraseUpTo(25), 25u);
  EXPECT_EQ(map.size(), 75u);
  // Evicting more than present stops at empty.
  EXPECT_EQ(map.EraseUpTo(1'000), 75u);
  EXPECT_TRUE(map.empty());
}

TEST(FlatMapTest, MoveOnlyValues) {
  // The match-memo boxing pattern: FlatMap<std::unique_ptr<T>> must survive
  // growth, erase-shifts, and Clear without copying values.
  FlatMap<std::unique_ptr<uint64_t>> map;
  for (uint64_t key = 0; key < 500; ++key) {
    auto [ptr, inserted] =
        map.TryEmplace(key, std::make_unique<uint64_t>(key * 11));
    ASSERT_TRUE(inserted);
    ASSERT_EQ(**ptr, key * 11);
  }
  for (uint64_t key = 0; key < 500; key += 2) ASSERT_TRUE(map.Erase(key));
  for (uint64_t key = 1; key < 500; key += 2) {
    auto* found = map.Find(key);
    ASSERT_NE(found, nullptr) << key;
    ASSERT_EQ(**found, key * 11);
  }
  map.Clear();
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.Find(1), nullptr);
}

TEST(FlatMapTest, BoxedValuePointeeStableAcrossRehash) {
  // Slot pointers move on rehash, but the boxed pointee must not — this is
  // the reference-stability contract qef/match_qef.h relies on when handing
  // out MatchResult references across memo mutations.
  FlatMap<std::unique_ptr<uint64_t>> map;
  auto [first, inserted] = map.TryEmplace(1, std::make_unique<uint64_t>(77));
  ASSERT_TRUE(inserted);
  const uint64_t* pointee = first->get();
  for (uint64_t key = 2; key < 5'000; ++key) {  // force several rehashes
    map.TryEmplace(key, std::make_unique<uint64_t>(key));
  }
  ASSERT_NE(map.Find(1), nullptr);
  EXPECT_EQ(map.Find(1)->get(), pointee);
  EXPECT_EQ(**map.Find(1), 77u);
}

}  // namespace
}  // namespace mube
