// Tests for src/exec: the virtual data layer, predicates/queries, the
// per-source engine (against brute-force filtering), and the mediated
// executor (duplicate merging, gap filling, conflict detection, costs).

#include <gtest/gtest.h>

#include "exec/executor.h"
#include "exec/query.h"
#include "exec/source_engine.h"
#include "exec/virtual_data.h"
#include "schema/universe.h"

namespace mube {
namespace {

// ------------------------------------------------------------ virtual data

TEST(VirtualDataTest, ConceptKeyedValuesAgreeAcrossSources) {
  // The same concept at two different sources yields the same semantic
  // key, hence the same value for the same tuple.
  Attribute a("author", 1);
  Attribute b("writer", 1);
  EXPECT_EQ(SemanticKey(a), SemanticKey(b));
  EXPECT_EQ(FieldValue(42, SemanticKey(a)), FieldValue(42, SemanticKey(b)));
}

TEST(VirtualDataTest, DifferentConceptsDisagree) {
  Attribute a("title", 0);
  Attribute b("author", 1);
  EXPECT_NE(SemanticKey(a), SemanticKey(b));
}

TEST(VirtualDataTest, NoiseAttributesKeyedByName) {
  Attribute a("engine torque");
  Attribute b("engine torque");
  Attribute c("cargo weight");
  EXPECT_EQ(SemanticKey(a), SemanticKey(b));
  EXPECT_NE(SemanticKey(a), SemanticKey(c));
}

TEST(VirtualDataTest, ValuesWithinDomainAndRoughlyUniform) {
  const uint64_t key = SemanticKey(Attribute("price", 5));
  std::vector<size_t> buckets(8, 0);
  for (uint64_t t = 0; t < 64'000; ++t) {
    const uint64_t v = FieldValue(t, key, 8);
    ASSERT_LT(v, 8u);
    ++buckets[v];
  }
  for (size_t count : buckets) {
    EXPECT_NEAR(static_cast<double>(count), 8000.0, 400.0);
  }
}

// ------------------------------------------------------------------ query

TEST(PredicateTest, AllOperators) {
  EXPECT_TRUE((Predicate{0, CompareOp::kEq, 5}).Matches(5));
  EXPECT_FALSE((Predicate{0, CompareOp::kEq, 5}).Matches(6));
  EXPECT_TRUE((Predicate{0, CompareOp::kNe, 5}).Matches(6));
  EXPECT_TRUE((Predicate{0, CompareOp::kLt, 5}).Matches(4));
  EXPECT_FALSE((Predicate{0, CompareOp::kLt, 5}).Matches(5));
  EXPECT_TRUE((Predicate{0, CompareOp::kLe, 5}).Matches(5));
  EXPECT_TRUE((Predicate{0, CompareOp::kGt, 5}).Matches(6));
  EXPECT_TRUE((Predicate{0, CompareOp::kGe, 5}).Matches(5));
  EXPECT_FALSE((Predicate{0, CompareOp::kGe, 5}).Matches(4));
}

TEST(QueryTest, ValidationAgainstSchema) {
  MediatedSchema schema;
  schema.Add(GlobalAttribute({AttributeRef(0, 0), AttributeRef(1, 0)}));
  Query ok;
  ok.predicates = {{0, CompareOp::kEq, 3}};
  EXPECT_TRUE(ok.Validate(schema).ok());

  Query out_of_range;
  out_of_range.predicates = {{5, CompareOp::kEq, 3}};
  EXPECT_FALSE(out_of_range.Validate(schema).ok());

  Query duplicate_ga;
  duplicate_ga.predicates = {{0, CompareOp::kGe, 1}, {0, CompareOp::kLe, 5}};
  EXPECT_FALSE(duplicate_ga.Validate(schema).ok());

  Query empty;  // full scan is legal
  EXPECT_TRUE(empty.Validate(schema).ok());
}

TEST(QueryTest, ToStringReadable) {
  Query q;
  q.predicates = {{0, CompareOp::kEq, 3}, {2, CompareOp::kLt, 9}};
  q.limit = 10;
  EXPECT_EQ(q.ToString(), "ga0 = 3 AND ga2 < 9 LIMIT 10");
  EXPECT_EQ(Query().ToString(), "true");
}

// ------------------------------------------------------- fixture universe

/// Two overlapping "books" sources plus one uncooperative and one with a
/// mismatched schema. GA0 = title (pure), GA1 = an impure GA deliberately
/// mixing title (source 2) with author (source 3) to exercise conflicts.
struct ExecFixture {
  ExecFixture() {
    auto add = [&](const char* name, std::vector<Attribute> attrs,
                   uint64_t lo, uint64_t hi, bool tuples = true) {
      Source s(0, name);
      for (Attribute& a : attrs) s.AddAttribute(std::move(a));
      if (tuples) {
        std::vector<uint64_t> t;
        for (uint64_t i = lo; i < hi; ++i) t.push_back(i);
        s.SetTuples(std::move(t));
      } else {
        s.set_cardinality(hi - lo);
      }
      universe.AddSource(std::move(s));
    };
    add("a.com", {Attribute("title", 0), Attribute("author", 1)}, 0, 3000);
    add("b.com", {Attribute("title", 0), Attribute("author", 1)}, 2000,
        5000);
    add("c.com", {Attribute("title", 0)}, 4000, 6000);
    add("d.com", {Attribute("author", 1)}, 0, 1000);
    add("mute.com", {Attribute("title", 0)}, 0, 500, /*tuples=*/false);

    // GA0: titles of a, b, c. GA1: authors of a, b. GA2 (impure): title of
    // mute? build impure over c.title + d.author to test conflicts.
    schema.Add(GlobalAttribute(
        {AttributeRef(0, 0), AttributeRef(1, 0), AttributeRef(2, 0),
         AttributeRef(4, 0)}));
    schema.Add(GlobalAttribute({AttributeRef(0, 1), AttributeRef(1, 1),
                                AttributeRef(3, 0)}));
  }

  Universe universe;
  MediatedSchema schema;
};

// ------------------------------------------------------------ SourceEngine

TEST(SourceEngineTest, ResolvesGaToLocalAttribute) {
  ExecFixture f;
  SourceEngine engine(f.universe, 0, f.schema);
  EXPECT_EQ(engine.LocalAttributeFor(0), std::optional<uint32_t>(0));
  EXPECT_EQ(engine.LocalAttributeFor(1), std::optional<uint32_t>(1));
  EXPECT_EQ(engine.LocalAttributeFor(9), std::nullopt);

  SourceEngine c_engine(f.universe, 2, f.schema);
  EXPECT_EQ(c_engine.LocalAttributeFor(0), std::optional<uint32_t>(0));
  EXPECT_EQ(c_engine.LocalAttributeFor(1), std::nullopt);
}

TEST(SourceEngineTest, CanAnswerRequiresAllPredicateGas) {
  ExecFixture f;
  SourceEngine c_engine(f.universe, 2, f.schema);  // titles only
  Query title_query;
  title_query.predicates = {{0, CompareOp::kEq, 7}};
  EXPECT_TRUE(c_engine.CanAnswer(title_query));
  Query author_query;
  author_query.predicates = {{1, CompareOp::kEq, 7}};
  EXPECT_FALSE(c_engine.CanAnswer(author_query));
  Query both;
  both.predicates = {{0, CompareOp::kEq, 7}, {1, CompareOp::kEq, 7}};
  EXPECT_FALSE(c_engine.CanAnswer(both));
}

TEST(SourceEngineTest, FilterMatchesBruteForce) {
  ExecFixture f;
  SourceEngine engine(f.universe, 0, f.schema);
  Query query;
  query.predicates = {{0, CompareOp::kLt, 100}};

  SourceScanResult scan = engine.Execute(query).ValueOrDie();
  EXPECT_EQ(scan.tuples_scanned, 3000u);

  // Brute force over the same virtual data.
  const uint64_t title_key = SemanticKey(Attribute("title", 0));
  size_t expected = 0;
  for (uint64_t t = 0; t < 3000; ++t) {
    if (FieldValue(t, title_key) < 100) ++expected;
  }
  EXPECT_EQ(scan.records.size(), expected);
  for (const MediatedRecord& r : scan.records) {
    ASSERT_TRUE(r.ga_values[0].has_value());
    EXPECT_LT(*r.ga_values[0], 100u);
    // Source 0 exposes both GAs, so both values are filled.
    EXPECT_TRUE(r.ga_values[1].has_value());
  }
}

TEST(SourceEngineTest, CostModelCharged) {
  ExecFixture f;
  CostModel cost;
  cost.default_latency_ms = 100.0;
  cost.transfer_ms_per_tuple = 1.0;
  SourceEngine engine(f.universe, 0, f.schema, cost);
  Query all;  // no predicates: everything matches
  SourceScanResult scan = engine.Execute(all).ValueOrDie();
  EXPECT_EQ(scan.records.size(), 3000u);
  EXPECT_DOUBLE_EQ(scan.cost_ms, 100.0 + 3000.0);
}

TEST(SourceEngineTest, UncooperativeSourceLatencyOnly) {
  ExecFixture f;
  SourceEngine engine(f.universe, 4, f.schema);
  Query all;
  SourceScanResult scan = engine.Execute(all).ValueOrDie();
  EXPECT_TRUE(scan.records.empty());
  EXPECT_EQ(scan.tuples_scanned, 0u);
  EXPECT_GT(scan.cost_ms, 0.0);
}

TEST(SourceEngineTest, SourceSideLimit) {
  ExecFixture f;
  SourceEngine engine(f.universe, 0, f.schema);
  Query query;
  query.limit = 5;
  SourceScanResult scan = engine.Execute(query).ValueOrDie();
  EXPECT_EQ(scan.records.size(), 5u);
}

// --------------------------------------------------------- MediatedExecutor

TEST(MediatedExecutorTest, MergesDuplicatesAcrossSources) {
  ExecFixture f;
  MediatedExecutor exec(f.universe, {0, 1, 2}, f.schema);
  Query all;
  auto result = exec.Execute(all);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const ExecutionResult& r = result.ValueOrDie();

  // Extents: a [0,3000), b [2000,5000), c [4000,6000) -> distinct 6000,
  // transferred 3000+3000+2000 = 8000, duplicates 2000.
  EXPECT_EQ(r.records.size(), 6000u);
  EXPECT_EQ(r.tuples_transferred, 8000u);
  EXPECT_EQ(r.duplicates_merged, 2000u);
  EXPECT_EQ(r.sources_contacted, 3u);
  EXPECT_EQ(r.conflicts, 0u);  // pure GAs agree everywhere

  // A tuple in the a∩b overlap carries provenance from both.
  bool found_overlap = false;
  for (const MediatedRecord& record : r.records) {
    if (record.tuple_id == 2500) {
      EXPECT_EQ(record.provenance.size(), 2u);
      found_overlap = true;
    }
  }
  EXPECT_TRUE(found_overlap);
}

TEST(MediatedExecutorTest, GapFillingAcrossSources) {
  // Tuple 4500 exists at b (title+author) and c (title only): the merged
  // row must have both values regardless of contact order.
  ExecFixture f;
  MediatedExecutor exec(f.universe, {2, 1}, f.schema);
  Query all;
  auto result = exec.Execute(all);
  ASSERT_TRUE(result.ok());
  for (const MediatedRecord& record : result.ValueOrDie().records) {
    if (record.tuple_id == 4500) {
      EXPECT_TRUE(record.ga_values[0].has_value());
      EXPECT_TRUE(record.ga_values[1].has_value());
    }
  }
}

TEST(MediatedExecutorTest, SkipsSourcesThatCannotAnswer) {
  ExecFixture f;
  MediatedExecutor exec(f.universe, {0, 1, 2, 3}, f.schema);
  Query author_query;
  author_query.predicates = {{1, CompareOp::kLt, 512}};
  auto result = exec.Execute(author_query);
  ASSERT_TRUE(result.ok());
  // c.com has no author attribute -> only a, b, d contacted, and the skip
  // is recorded instead of silently read as full coverage.
  EXPECT_EQ(result.ValueOrDie().sources_contacted, 3u);
  EXPECT_EQ(result.ValueOrDie().skipped_cannot_answer,
            (std::vector<uint32_t>{2}));
}

TEST(SourceEngineTest, ExecuteFailsLoudlyWhenCannotAnswer) {
  ExecFixture f;
  SourceEngine c_engine(f.universe, 2, f.schema);  // titles only
  Query author_query;
  author_query.predicates = {{1, CompareOp::kEq, 7}};
  auto scan = c_engine.Execute(author_query);
  ASSERT_FALSE(scan.ok());
  EXPECT_EQ(scan.status().code(), StatusCode::kFailedPrecondition);
}

TEST(MediatedExecutorTest, ConflictsExposeImpureGas) {
  // An impure GA mixing title (c.com) and author (d.com): build a schema
  // where GA0 contains c.title and d.author — overlapping tuples [0,1000)
  // do not exist at c ([4000,6000)), so force overlap by using a and d.
  Universe u;
  {
    Source s(0, "titles.com");
    s.AddAttribute(Attribute("title", 0));
    std::vector<uint64_t> t;
    for (uint64_t i = 0; i < 1000; ++i) t.push_back(i);
    s.SetTuples(std::move(t));
    u.AddSource(std::move(s));
  }
  {
    Source s(0, "authors.com");
    s.AddAttribute(Attribute("author", 1));
    std::vector<uint64_t> t;
    for (uint64_t i = 0; i < 1000; ++i) t.push_back(i);
    s.SetTuples(std::move(t));
    u.AddSource(std::move(s));
  }
  MediatedSchema impure;
  impure.Add(GlobalAttribute({AttributeRef(0, 0), AttributeRef(1, 0)}));

  MediatedExecutor exec(u, {0, 1}, impure);
  Query all;
  auto result = exec.Execute(all);
  ASSERT_TRUE(result.ok());
  const ExecutionResult& r = result.ValueOrDie();
  EXPECT_EQ(r.records.size(), 1000u);
  // Title and author values of the same tuple disagree almost surely for
  // most tuples; with 1000 tuples and a 1024-value domain, collisions are
  // rare.
  EXPECT_GT(r.conflicts, 900u);
}

TEST(MediatedExecutorTest, LimitAppliedAfterMerging) {
  ExecFixture f;
  MediatedExecutor exec(f.universe, {0, 1}, f.schema);
  Query q;
  q.limit = 7;
  auto result = exec.Execute(q);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.ValueOrDie().records.size(), 7u);
  // Transfer counters still reflect the full scans.
  EXPECT_EQ(result.ValueOrDie().tuples_transferred, 6000u);
}

TEST(MediatedExecutorTest, CostAccounting) {
  ExecFixture f;
  CostModel cost;
  cost.default_latency_ms = 50.0;
  cost.transfer_ms_per_tuple = 0.0;
  MediatedExecutor exec(f.universe, {0, 1, 2}, f.schema, cost);
  Query all;
  auto result = exec.Execute(all);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result.ValueOrDie().total_cost_ms, 150.0);
  EXPECT_DOUBLE_EQ(result.ValueOrDie().parallel_latency_ms, 50.0);
}

TEST(MediatedExecutorTest, InvalidQueryRejected) {
  ExecFixture f;
  MediatedExecutor exec(f.universe, {0}, f.schema);
  Query bad;
  bad.predicates = {{9, CompareOp::kEq, 1}};
  EXPECT_FALSE(exec.Execute(bad).ok());
}

TEST(MediatedExecutorTest, MoreSourcesMoreCompleteness) {
  // The paper's core tradeoff, observable at query time: adding sources
  // raises distinct results (coverage) but also transfers (cost).
  ExecFixture f;
  Query all;
  MediatedExecutor small(f.universe, {0}, f.schema);
  MediatedExecutor big(f.universe, {0, 1, 2}, f.schema);
  auto small_result = small.Execute(all);
  auto big_result = big.Execute(all);
  ASSERT_TRUE(small_result.ok());
  ASSERT_TRUE(big_result.ok());
  EXPECT_GT(big_result.ValueOrDie().records.size(),
            small_result.ValueOrDie().records.size());
  EXPECT_GT(big_result.ValueOrDie().total_cost_ms,
            small_result.ValueOrDie().total_cost_ms);
}

}  // namespace
}  // namespace mube
