// Tests for src/datagen: corpus invariants, the perturbation model, the
// §7.1 universe generator's statistical properties (Zipf cardinalities,
// General/Specialty pools, MTTF distribution), and the Figure 1 theater
// catalog.

#include <algorithm>
#include <cmath>
#include <set>
#include <unordered_set>

#include <gtest/gtest.h>

#include "datagen/books_corpus.h"
#include "datagen/domain.h"
#include "datagen/generator.h"
#include "datagen/theater.h"
#include "text/similarity.h"

namespace mube {
namespace {

// ----------------------------------------------------------------- corpus --

TEST(BooksCorpusTest, FourteenConcepts) {
  EXPECT_EQ(kBooksConceptCount, 14);
  EXPECT_EQ(BooksConceptNames().size(), 14u);
  for (int32_t c = 0; c < kBooksConceptCount; ++c) {
    EXPECT_GE(BooksConceptVariants(c).size(), 3u) << "concept " << c;
  }
}

TEST(BooksCorpusTest, FiftyBaseSchemasWithinSizeBounds) {
  const auto& schemas = BooksBaseSchemas();
  ASSERT_EQ(schemas.size(), 50u);
  for (const CorpusSchema& schema : schemas) {
    EXPECT_GE(schema.attributes.size(), 3u) << schema.name;
    EXPECT_LE(schema.attributes.size(), 8u) << schema.name;
    // No schema expresses the same concept twice (Definition 1 would be
    // violated by construction otherwise).
    std::set<int32_t> concepts;
    for (const CorpusAttribute& attr : schema.attributes) {
      EXPECT_TRUE(concepts.insert(attr.concept_id).second)
          << schema.name << " repeats concept " << attr.concept_id;
      EXPECT_GE(attr.concept_id, 0);
      EXPECT_LT(attr.concept_id, kBooksConceptCount);
    }
  }
}

TEST(BooksCorpusTest, CorpusIsDeterministic) {
  const auto& a = BooksBaseSchemas();
  const auto& b = BooksBaseSchemas();
  EXPECT_EQ(&a, &b);  // same singleton
  EXPECT_EQ(a[0].attributes.size(), b[0].attributes.size());
}

TEST(BooksCorpusTest, EveryConceptAppearsSomewhere) {
  std::set<int32_t> seen;
  for (const CorpusSchema& schema : BooksBaseSchemas()) {
    for (const CorpusAttribute& attr : schema.attributes) {
      seen.insert(attr.concept_id);
    }
  }
  EXPECT_EQ(seen.size(), static_cast<size_t>(kBooksConceptCount));
}

TEST(BooksCorpusTest, AttributeNamesComeFromVariantPools) {
  for (const CorpusSchema& schema : BooksBaseSchemas()) {
    for (const CorpusAttribute& attr : schema.attributes) {
      const auto& pool = BooksConceptVariants(attr.concept_id);
      EXPECT_NE(std::find(pool.begin(), pool.end(), attr.name), pool.end())
          << attr.name;
    }
  }
}

TEST(BooksCorpusTest, OffDomainWordsAreDistinctAndDissimilar) {
  const auto& words = OffDomainWords();
  EXPECT_EQ(words.size(), 64u * 64u);
  std::set<std::string> unique(words.begin(), words.end());
  EXPECT_EQ(unique.size(), words.size());

  // No off-domain word is similar to any concept variant at the paper's
  // θ = 0.75 (this is what guarantees "no false GAs" in Table 1). Spot
  // check a sample against all variants.
  NGramJaccard jaccard(3);
  for (size_t w = 0; w < words.size(); w += 97) {
    for (int32_t c = 0; c < kBooksConceptCount; ++c) {
      for (const std::string& variant : BooksConceptVariants(c)) {
        EXPECT_LT(jaccard.Similarity(words[w], variant), 0.75)
            << words[w] << " vs " << variant;
      }
    }
  }
}

TEST(BooksCorpusTest, OffDomainWordsMutuallyBelowTheta) {
  const auto& words = OffDomainWords();
  NGramJaccard jaccard(3);
  // Sampled pairwise check (the full 16M-pair check lives in the bench).
  for (size_t i = 0; i < words.size(); i += 131) {
    for (size_t j = i + 1; j < words.size(); j += 113) {
      EXPECT_LT(jaccard.Similarity(words[i], words[j]), 0.75)
          << words[i] << " vs " << words[j];
    }
  }
}

// ---------------------------------------------------------------- domains --

class DomainCorpusTest : public ::testing::TestWithParam<std::string> {
 protected:
  const DomainCorpus& corpus() {
    auto result = FindDomain(GetParam());
    EXPECT_TRUE(result.ok());
    return *result.ValueOrDie();
  }
};

TEST_P(DomainCorpusTest, StructureInvariants) {
  const DomainCorpus& domain = corpus();
  EXPECT_EQ(domain.name, GetParam());
  ASSERT_GT(domain.concept_count(), 0);
  ASSERT_EQ(domain.concept_names.size(), domain.variants.size());
  ASSERT_EQ(domain.prevalence.size(), domain.variants.size());
  for (const auto& pool : domain.variants) {
    EXPECT_GE(pool.size(), 2u);
  }
  for (double p : domain.prevalence) {
    EXPECT_GT(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
  EXPECT_FALSE(domain.base_schemas.empty());
}

TEST_P(DomainCorpusTest, BaseSchemasWellFormed) {
  const DomainCorpus& domain = corpus();
  for (const CorpusSchema& schema : domain.base_schemas) {
    EXPECT_GE(schema.attributes.size(), 3u) << schema.name;
    EXPECT_LE(schema.attributes.size(), 8u) << schema.name;
    std::set<int32_t> concepts;
    for (const CorpusAttribute& attr : schema.attributes) {
      EXPECT_TRUE(concepts.insert(attr.concept_id).second) << schema.name;
      ASSERT_GE(attr.concept_id, 0);
      ASSERT_LT(attr.concept_id, domain.concept_count());
      const auto& pool =
          domain.variants[static_cast<size_t>(attr.concept_id)];
      EXPECT_NE(std::find(pool.begin(), pool.end(), attr.name), pool.end());
    }
  }
}

TEST_P(DomainCorpusTest, CrossConceptVariantsStayBelowTheta) {
  // The zero-false-GA guarantee of Table 1 requires that no two variants
  // of *different* concepts clear the default θ = 0.75.
  const DomainCorpus& domain = corpus();
  NGramJaccard jaccard(3);
  for (size_t c1 = 0; c1 < domain.variants.size(); ++c1) {
    for (size_t c2 = c1 + 1; c2 < domain.variants.size(); ++c2) {
      for (const std::string& a : domain.variants[c1]) {
        for (const std::string& b : domain.variants[c2]) {
          EXPECT_LT(jaccard.Similarity(a, b), 0.75)
              << domain.name << ": '" << a << "' (" << c1 << ") vs '" << b
              << "' (" << c2 << ")";
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllDomains, DomainCorpusTest,
                         ::testing::Values("books", "jobs"));

TEST(DomainTest, FindDomainRejectsUnknown) {
  EXPECT_FALSE(FindDomain("realestate").ok());
}

TEST(DomainTest, JobsUniverseEndToEnd) {
  GeneratorConfig config;
  config.domain = "jobs";
  config.num_sources = 60;
  config.min_cardinality = 100;
  config.max_cardinality = 2'000;
  config.tuple_pool_size = 10'000;
  config.specialty_tuples_min = 5;
  config.specialty_tuples_max = 20;
  auto result = GenerateUniverse(config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const GeneratedUniverse& g = result.ValueOrDie();
  EXPECT_EQ(g.num_concepts, JobsDomain().concept_count());
  EXPECT_EQ(g.universe.size(), 60u);
  EXPECT_EQ(g.unperturbed_source_ids.size(),
            JobsDomain().base_schemas.size());
  // Jobs attribute names actually appear.
  bool found_jobs_attr = false;
  for (const Source& s : g.universe.sources()) {
    if (s.FindAttribute("job title").has_value()) found_jobs_attr = true;
  }
  EXPECT_TRUE(found_jobs_attr);
}

// -------------------------------------------------------------- generator --

GeneratorConfig SmallConfig(uint64_t seed = 1) {
  GeneratorConfig config;
  config.seed = seed;
  config.num_sources = 80;
  config.min_cardinality = 100;
  config.max_cardinality = 5'000;
  config.tuple_pool_size = 40'000;
  config.specialty_tuples_min = 10;
  config.specialty_tuples_max = 50;
  return config;
}

TEST(GeneratorTest, ConfigValidation) {
  EXPECT_TRUE(GeneratorConfig().Validate().ok());

  GeneratorConfig zero_sources = SmallConfig();
  zero_sources.num_sources = 0;
  EXPECT_FALSE(zero_sources.Validate().ok());

  GeneratorConfig bad_cards = SmallConfig();
  bad_cards.min_cardinality = 10;
  bad_cards.max_cardinality = 5;
  EXPECT_FALSE(bad_cards.Validate().ok());

  GeneratorConfig pool_too_small = SmallConfig();
  pool_too_small.tuple_pool_size = 1'000;  // < 2 * max_cardinality
  EXPECT_FALSE(pool_too_small.Validate().ok());

  GeneratorConfig bad_specialty = SmallConfig();
  bad_specialty.specialty_tuples_min = 100;
  bad_specialty.specialty_tuples_max = 10;
  EXPECT_FALSE(bad_specialty.Validate().ok());

  GeneratorConfig bad_coop = SmallConfig();
  bad_coop.cooperative_fraction = 1.5;
  EXPECT_FALSE(bad_coop.Validate().ok());
}

TEST(GeneratorTest, ProducesRequestedSourceCount) {
  auto result = GenerateUniverse(SmallConfig());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const GeneratedUniverse& g = result.ValueOrDie();
  EXPECT_EQ(g.universe.size(), 80u);
  EXPECT_EQ(g.num_concepts, kBooksConceptCount);
  // First 50 are the unperturbed bases.
  EXPECT_EQ(g.unperturbed_source_ids.size(), 50u);
}

TEST(GeneratorTest, DeterministicForSameSeed) {
  auto a = GenerateUniverse(SmallConfig(7));
  auto b = GenerateUniverse(SmallConfig(7));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  const Universe& ua = a.ValueOrDie().universe;
  const Universe& ub = b.ValueOrDie().universe;
  ASSERT_EQ(ua.size(), ub.size());
  for (uint32_t i = 0; i < ua.size(); ++i) {
    EXPECT_EQ(ua.source(i).name(), ub.source(i).name());
    EXPECT_EQ(ua.source(i).cardinality(), ub.source(i).cardinality());
    EXPECT_EQ(ua.source(i).tuples(), ub.source(i).tuples());
    ASSERT_EQ(ua.source(i).attribute_count(), ub.source(i).attribute_count());
    for (uint32_t j = 0; j < ua.source(i).attribute_count(); ++j) {
      EXPECT_EQ(ua.source(i).attribute(j).name, ub.source(i).attribute(j).name);
    }
  }
}

TEST(GeneratorTest, DifferentSeedsDiffer) {
  auto a = GenerateUniverse(SmallConfig(1));
  auto b = GenerateUniverse(SmallConfig(2));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  bool any_difference = false;
  const Universe& ua = a.ValueOrDie().universe;
  const Universe& ub = b.ValueOrDie().universe;
  for (uint32_t i = 0; i < ua.size() && !any_difference; ++i) {
    any_difference = ua.source(i).cardinality() != ub.source(i).cardinality();
  }
  EXPECT_TRUE(any_difference);
}

TEST(GeneratorTest, UnperturbedSchemasMatchCorpus) {
  auto result = GenerateUniverse(SmallConfig());
  ASSERT_TRUE(result.ok());
  const GeneratedUniverse& g = result.ValueOrDie();
  const auto& bases = BooksBaseSchemas();
  for (size_t i = 0; i < g.unperturbed_source_ids.size(); ++i) {
    const Source& s = g.universe.source(g.unperturbed_source_ids[i]);
    const CorpusSchema& base = bases[i];
    ASSERT_EQ(s.attribute_count(), base.attributes.size());
    for (uint32_t j = 0; j < s.attribute_count(); ++j) {
      EXPECT_EQ(s.attribute(j).name, base.attributes[j].name);
      EXPECT_EQ(s.attribute(j).concept_id, base.attributes[j].concept_id);
    }
  }
}

TEST(GeneratorTest, CardinalitiesWithinBoundsAndSkewed) {
  auto result = GenerateUniverse(SmallConfig());
  ASSERT_TRUE(result.ok());
  const Universe& u = result.ValueOrDie().universe;
  uint64_t lo = UINT64_MAX, hi = 0;
  size_t at_floor = 0;
  for (const Source& s : u.sources()) {
    EXPECT_GE(s.cardinality(), 100u);
    EXPECT_LE(s.cardinality(), 5'000u);
    lo = std::min(lo, s.cardinality());
    hi = std::max(hi, s.cardinality());
    if (s.cardinality() == 100u) ++at_floor;
  }
  EXPECT_EQ(hi, 5'000u);  // rank 1 hits the max
  // Zipf with skew 1 over 80 ranks: the tail sits at the floor.
  EXPECT_GT(at_floor, 10u);
}

TEST(GeneratorTest, TuplesComeFromTheRightPools) {
  auto result = GenerateUniverse(SmallConfig());
  ASSERT_TRUE(result.ok());
  const GeneratedUniverse& g = result.ValueOrDie();
  const uint64_t general_end = 20'000;  // pool/2
  size_t specialty_sources = 0;
  for (const Source& s : g.universe.sources()) {
    ASSERT_TRUE(s.has_tuples());
    // Distinctness within a source.
    std::unordered_set<uint64_t> unique(s.tuples().begin(), s.tuples().end());
    EXPECT_EQ(unique.size(), s.tuples().size());
    size_t specials = 0;
    for (uint64_t t : s.tuples()) {
      EXPECT_LT(t, 40'000u);
      if (t >= general_end) ++specials;
    }
    if (specials > 0) {
      ++specialty_sources;
      EXPECT_GE(specials, 10u);
      EXPECT_LE(specials, 50u);
    }
  }
  // About half the sources mix in Specialty tuples.
  EXPECT_GT(specialty_sources, 80u / 4);
  EXPECT_LT(specialty_sources, 80u * 3 / 4);
}

TEST(GeneratorTest, MttfDistributionRoughlyNormal) {
  GeneratorConfig config = SmallConfig();
  config.num_sources = 600;  // more samples for stable moments
  config.attach_tuples = false;
  auto result = GenerateUniverse(config);
  ASSERT_TRUE(result.ok());
  const Universe& u = result.ValueOrDie().universe;
  double sum = 0.0, sum_sq = 0.0;
  for (const Source& s : u.sources()) {
    const auto mttf = s.characteristics().Get("mttf");
    ASSERT_TRUE(mttf.has_value());
    EXPECT_GT(*mttf, 0.0);
    sum += *mttf;
    sum_sq += *mttf * *mttf;
  }
  const double n = static_cast<double>(u.size());
  const double mean = sum / n;
  const double stddev = std::sqrt(sum_sq / n - mean * mean);
  EXPECT_NEAR(mean, 100.0, 6.0);
  EXPECT_NEAR(stddev, 40.0, 8.0);
}

TEST(GeneratorTest, AttachTuplesFalseSkipsData) {
  GeneratorConfig config = SmallConfig();
  config.attach_tuples = false;
  auto result = GenerateUniverse(config);
  ASSERT_TRUE(result.ok());
  for (const Source& s : result.ValueOrDie().universe.sources()) {
    EXPECT_FALSE(s.has_tuples());
    EXPECT_GT(s.cardinality(), 0u);  // still reported
  }
}

TEST(GeneratorTest, CooperativeFractionRespected) {
  GeneratorConfig config = SmallConfig();
  config.cooperative_fraction = 0.5;
  auto result = GenerateUniverse(config);
  ASSERT_TRUE(result.ok());
  size_t cooperative = 0;
  for (const Source& s : result.ValueOrDie().universe.sources()) {
    cooperative += s.has_tuples() ? 1 : 0;
  }
  EXPECT_GT(cooperative, 80u / 4);
  EXPECT_LT(cooperative, 80u * 3 / 4);
}

TEST(GeneratorTest, NoiseAttributeNamesNeverRepeat) {
  auto result = GenerateUniverse(SmallConfig());
  ASSERT_TRUE(result.ok());
  std::set<std::string> noise_names;
  for (const Source& s : result.ValueOrDie().universe.sources()) {
    for (const Attribute& a : s.attributes()) {
      if (a.concept_id == kNoConcept) {
        EXPECT_TRUE(noise_names.insert(a.name).second)
            << "duplicate noise attribute " << a.name;
      }
    }
  }
  EXPECT_GT(noise_names.size(), 0u);
}

TEST(GeneratorTest, PerturbedSchemasKeepDomainCharacter) {
  auto result = GenerateUniverse(SmallConfig());
  ASSERT_TRUE(result.ok());
  const GeneratedUniverse& g = result.ValueOrDie();
  size_t with_domain_attr = 0;
  for (const Source& s : g.universe.sources()) {
    EXPECT_GE(s.attribute_count(), 1u);
    for (const Attribute& a : s.attributes()) {
      if (a.concept_id != kNoConcept) {
        ++with_domain_attr;
        break;
      }
    }
  }
  // Every source retains at least one domain attribute under the default
  // perturbation rates (removal keeps >= 1; replacement caps at 1).
  EXPECT_GT(with_domain_attr, g.universe.size() * 9 / 10);
}

// ---------------------------------------------------------------- theater --

TEST(TheaterTest, MatchesFigure1) {
  Universe u = TheaterUniverse();
  ASSERT_EQ(u.size(), 11u);
  EXPECT_TRUE(u.FindSource("aceticket.com").has_value());
  EXPECT_TRUE(u.FindSource("lastminute.com").has_value());
  const Source& pbs = u.source(*u.FindSource("pbs.org"));
  EXPECT_EQ(pbs.attribute_count(), 6u);
  EXPECT_TRUE(pbs.FindAttribute("program title").has_value());
  const Source& ace = u.source(*u.FindSource("aceticket.com"));
  EXPECT_EQ(ace.ToString(), "aceticket.com{state, city, event, venue}");
}

TEST(TheaterTest, CarriesDataAndCharacteristics) {
  Universe u = TheaterUniverse();
  for (const Source& s : u.sources()) {
    EXPECT_TRUE(s.has_tuples());
    EXPECT_GE(s.cardinality(), 2'000u);
    EXPECT_TRUE(s.characteristics().Has("latency"));
  }
}

TEST(TheaterTest, DeterministicPerSeed) {
  Universe a = TheaterUniverse(3), b = TheaterUniverse(3);
  for (uint32_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.source(i).cardinality(), b.source(i).cardinality());
  }
}

}  // namespace
}  // namespace mube
