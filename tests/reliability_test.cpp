// Tests for src/reliability: circuit-breaker state machine, retry/backoff
// bounds, deterministic fault injection, the resilient executor (no-fault
// equivalence, failover, deadlines, persistent-failure churn), sketch
// corruption + cache overrides, and the Session-facing health surface
// including churn-log persistence.

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/mube.h"
#include "core/session.h"
#include "datagen/generator.h"
#include "dynamic/churn.h"
#include "dynamic/delta_universe.h"
#include "exec/executor.h"
#include "exec/query.h"
#include "reliability/circuit_breaker.h"
#include "reliability/fault_injector.h"
#include "reliability/reliable_executor.h"
#include "reliability/retry_policy.h"
#include "schema/universe.h"
#include "sketch/pcsa.h"
#include "sketch/signature_cache.h"

namespace mube {
namespace {

// ---------------------------------------------------------- shared fixture

/// Four overlapping cooperative "books" sources. GA0 = title of a, b, c;
/// GA1 = author of a, b, d — so every GA of every source has at least one
/// sibling, and failover always has somewhere to go.
struct ReliabilityFixture {
  ReliabilityFixture() {
    auto add = [&](const char* name, std::vector<Attribute> attrs,
                   uint64_t lo, uint64_t hi) {
      Source s(0, name);
      for (Attribute& a : attrs) s.AddAttribute(std::move(a));
      std::vector<uint64_t> t;
      for (uint64_t i = lo; i < hi; ++i) t.push_back(i);
      s.SetTuples(std::move(t));
      universe.AddSource(std::move(s));
    };
    add("a.com", {Attribute("title", 0), Attribute("author", 1)}, 0, 3000);
    add("b.com", {Attribute("title", 0), Attribute("author", 1)}, 2000,
        5000);
    add("c.com", {Attribute("title", 0)}, 4000, 6000);
    add("d.com", {Attribute("author", 1)}, 0, 1000);

    schema.Add(GlobalAttribute(
        {AttributeRef(0, 0), AttributeRef(1, 0), AttributeRef(2, 0)}));
    schema.Add(GlobalAttribute(
        {AttributeRef(0, 1), AttributeRef(1, 1), AttributeRef(3, 0)}));
    sources = {0, 1, 2, 3};
  }

  /// A profile that fails every attempt the same way.
  static FaultProfile HardDown() {
    FaultProfile p;
    p.hard_down = true;
    return p;
  }

  Universe universe;
  MediatedSchema schema;
  std::vector<uint32_t> sources;
};

// --------------------------------------------------------- circuit breaker

TEST(CircuitBreakerTest, OpensAtThresholdNotBefore) {
  CircuitBreaker breaker;  // window 16, min_samples 4, threshold 0.5
  breaker.RecordFailure(0);
  breaker.RecordFailure(1);
  breaker.RecordFailure(2);
  // Three failures are below min_samples: still closed despite rate 1.0.
  EXPECT_EQ(breaker.state(2), BreakerState::kClosed);
  EXPECT_TRUE(breaker.AllowRequest(2));
  EXPECT_DOUBLE_EQ(breaker.FailureRate(), 1.0);

  breaker.RecordFailure(3);  // fourth sample crosses min_samples
  EXPECT_EQ(breaker.state(3), BreakerState::kOpen);
  EXPECT_EQ(breaker.transitions().opens, 1u);
  EXPECT_FALSE(breaker.AllowRequest(100));
  EXPECT_FALSE(breaker.AllowRequest(2002));  // cooldown is 2000 from t=3
}

TEST(CircuitBreakerTest, HalfOpenProbesThenCloses) {
  CircuitBreaker breaker;
  for (int i = 0; i < 4; ++i) breaker.RecordFailure(i);
  ASSERT_EQ(breaker.state(3), BreakerState::kOpen);

  // Past the cooldown the breaker reads half-open and admits probes.
  EXPECT_EQ(breaker.state(2003), BreakerState::kHalfOpen);
  EXPECT_TRUE(breaker.AllowRequest(2003));
  EXPECT_EQ(breaker.transitions().half_opens, 1u);

  breaker.RecordSuccess(2004);
  EXPECT_EQ(breaker.state(2004), BreakerState::kHalfOpen);  // streak 1 of 2
  breaker.RecordSuccess(2005);
  EXPECT_EQ(breaker.state(2005), BreakerState::kClosed);
  EXPECT_EQ(breaker.transitions().closes, 1u);
  // Closing forgets the outage's window.
  EXPECT_DOUBLE_EQ(breaker.FailureRate(), 0.0);
}

TEST(CircuitBreakerTest, FailedProbeReopens) {
  CircuitBreaker breaker;
  for (int i = 0; i < 4; ++i) breaker.RecordFailure(i);
  ASSERT_TRUE(breaker.AllowRequest(2500));  // half-open probe
  breaker.RecordFailure(2501);
  EXPECT_EQ(breaker.state(2501), BreakerState::kOpen);
  EXPECT_EQ(breaker.transitions().opens, 2u);
  // The new cooldown starts at the failed probe, not the original open.
  EXPECT_FALSE(breaker.AllowRequest(4000));
  EXPECT_TRUE(breaker.AllowRequest(4502));
}

TEST(CircuitBreakerTest, SlidingWindowEvictsOldOutcomes) {
  CircuitBreakerOptions options;
  options.window = 8;
  options.min_samples = 8;
  CircuitBreaker breaker(options);
  for (int i = 0; i < 8; ++i) breaker.RecordSuccess(i);
  EXPECT_DOUBLE_EQ(breaker.FailureRate(), 0.0);
  // Four failures overwrite four successes: rate is 4/8, window stays 8.
  for (int i = 0; i < 4; ++i) breaker.RecordFailure(8 + i);
  EXPECT_DOUBLE_EQ(breaker.FailureRate(), 0.5);
}

TEST(CircuitBreakerTest, SeededScheduleIsDeterministic) {
  // Property test: the same outcome schedule drives two breakers through
  // bit-identical trajectories, and the transition counts obey the state
  // machine's invariants.
  for (uint64_t seed : {7ull, 99ull, 12345ull}) {
    Rng rng(seed);
    std::vector<bool> failures;
    for (int i = 0; i < 300; ++i) failures.push_back(rng.Bernoulli(0.45));

    CircuitBreaker one, two;
    for (size_t i = 0; i < failures.size(); ++i) {
      const double now = static_cast<double>(i) * 50.0;
      const bool admit_one = one.AllowRequest(now);
      const bool admit_two = two.AllowRequest(now);
      ASSERT_EQ(admit_one, admit_two) << "step " << i << " seed " << seed;
      if (!admit_one) continue;
      if (failures[i]) {
        one.RecordFailure(now);
        two.RecordFailure(now);
      } else {
        one.RecordSuccess(now);
        two.RecordSuccess(now);
      }
      ASSERT_EQ(one.state(now), two.state(now)) << "step " << i;
    }
    EXPECT_EQ(one.transitions().opens, two.transitions().opens);
    EXPECT_EQ(one.transitions().half_opens, two.transitions().half_opens);
    EXPECT_EQ(one.transitions().closes, two.transitions().closes);
    // Every close and every half-open requires a preceding open.
    EXPECT_GE(one.transitions().opens, one.transitions().closes);
    EXPECT_GE(one.transitions().half_opens, one.transitions().closes);
    EXPECT_GE(one.transitions().opens + 1, one.transitions().half_opens);
    EXPECT_GT(one.transitions().opens, 0u);  // 45% failures must trip it
  }
}

TEST(BreakerBankTest, LazyCreationAndTotals) {
  BreakerBank bank;
  EXPECT_EQ(bank.Find(3), nullptr);
  for (int i = 0; i < 4; ++i) bank.For(3).RecordFailure(i);
  bank.For(7).RecordSuccess(0);
  ASSERT_NE(bank.Find(3), nullptr);
  EXPECT_EQ(bank.Find(3)->transitions().opens, 1u);
  EXPECT_EQ(bank.TotalTransitions().opens, 1u);
  EXPECT_EQ(bank.breakers().size(), 2u);
}

// ------------------------------------------------------------ retry policy

TEST(RetryPolicyTest, BackoffStaysWithinBounds) {
  RetryPolicy policy;
  policy.base_backoff_ms = 50.0;
  policy.max_backoff_ms = 400.0;

  Rng rng(21);
  // The first draw (no previous delay) starts the sequence at the base.
  double delay = NextBackoffMs(policy, 0.0, &rng);
  EXPECT_DOUBLE_EQ(delay, 50.0);

  for (int i = 0; i < 200; ++i) {
    const double next = NextBackoffMs(policy, delay, &rng);
    EXPECT_GE(next, policy.base_backoff_ms);
    EXPECT_LE(next, policy.max_backoff_ms);
    // Decorrelated jitter: never more than 3x the previous delay.
    EXPECT_LE(next, std::max(policy.base_backoff_ms, 3.0 * delay) + 1e-9);
    delay = next;
  }
}

TEST(RetryPolicyTest, BackoffIsDeterministicPerSeed) {
  RetryPolicy policy;
  Rng a(5), b(5);
  double prev_a = 0.0, prev_b = 0.0;
  for (int i = 0; i < 50; ++i) {
    prev_a = NextBackoffMs(policy, prev_a, &a);
    prev_b = NextBackoffMs(policy, prev_b, &b);
    ASSERT_DOUBLE_EQ(prev_a, prev_b) << "draw " << i;
  }
}

// ----------------------------------------------------------- fault injector

TEST(FaultInjectorTest, FaultFreeSourcesTakeTheFastPath) {
  FaultInjector injector(1);
  FaultOutcome outcome = injector.NextScanOutcome(42);
  EXPECT_TRUE(outcome.ok());
  EXPECT_DOUBLE_EQ(outcome.latency_ms, 0.0);
  // The fast path does not even advance the schedule.
  EXPECT_EQ(injector.attempt_count(42), 0u);

  injector.SetProfile(42, FaultProfile{});  // explicit fault-free profile
  EXPECT_EQ(injector.ProfileFor(42), nullptr);
  EXPECT_TRUE(injector.NextScanOutcome(42).ok());
  EXPECT_EQ(injector.attempt_count(42), 0u);
}

TEST(FaultInjectorTest, RewindReplaysTheExactSchedule) {
  FaultInjector injector(0xABCDEF);
  FaultProfile flaky;
  flaky.transient_failure_prob = 0.5;
  flaky.extra_latency_ms = 10.0;
  flaky.latency_jitter_ms = 25.0;
  injector.SetProfile(9, flaky);

  std::vector<FaultKind> kinds;
  std::vector<double> latencies;
  for (int i = 0; i < 64; ++i) {
    FaultOutcome o = injector.NextScanOutcome(9);
    kinds.push_back(o.kind);
    latencies.push_back(o.latency_ms);
  }
  EXPECT_EQ(injector.attempt_count(9), 64u);
  EXPECT_GT(std::count(kinds.begin(), kinds.end(), FaultKind::kTransient), 0);
  EXPECT_GT(std::count(kinds.begin(), kinds.end(), FaultKind::kNone), 0);

  injector.Rewind();
  EXPECT_EQ(injector.attempt_count(9), 0u);
  for (int i = 0; i < 64; ++i) {
    FaultOutcome o = injector.NextScanOutcome(9);
    ASSERT_EQ(o.kind, kinds[i]) << "attempt " << i;
    ASSERT_DOUBLE_EQ(o.latency_ms, latencies[i]) << "attempt " << i;
  }
}

TEST(FaultInjectorTest, SchedulesAreIndependentOfCallOrder) {
  // Outcomes depend only on (seed, source, attempt index) — interleaving
  // sources differently must not change either schedule.
  FaultProfile flaky;
  flaky.transient_failure_prob = 0.4;
  flaky.latency_jitter_ms = 15.0;

  FaultInjector interleaved(77), sequential(77);
  for (FaultInjector* inj : {&interleaved, &sequential}) {
    inj->SetProfile(1, flaky);
    inj->SetProfile(2, flaky);
  }
  std::vector<FaultKind> a1, a2, b1, b2;
  for (int i = 0; i < 32; ++i) {
    a1.push_back(interleaved.NextScanOutcome(1).kind);
    a2.push_back(interleaved.NextScanOutcome(2).kind);
  }
  for (int i = 0; i < 32; ++i) b2.push_back(sequential.NextScanOutcome(2).kind);
  for (int i = 0; i < 32; ++i) b1.push_back(sequential.NextScanOutcome(1).kind);
  EXPECT_EQ(a1, b1);
  EXPECT_EQ(a2, b2);
}

TEST(FaultInjectorTest, HardDownDominatesAndNeverRetries) {
  FaultInjector injector(3);
  injector.SetProfile(5, ReliabilityFixture::HardDown());
  for (int i = 0; i < 5; ++i) {
    FaultOutcome o = injector.NextScanOutcome(5);
    EXPECT_EQ(o.kind, FaultKind::kHardDown);
    EXPECT_FALSE(o.retryable());
    EXPECT_DOUBLE_EQ(o.latency_ms, 0.0);
  }
}

TEST(FaultInjectorTest, SlowTailBeyondBudgetIsATimeout) {
  FaultInjector injector(11);
  FaultProfile slow;
  slow.extra_latency_ms = 100.0;
  slow.slow_tail_prob = 1.0;  // always in the tail: 100 * 10 = 1000 ms
  slow.timeout_ms = 500.0;
  injector.SetProfile(4, slow);

  FaultOutcome o = injector.NextScanOutcome(4);
  EXPECT_EQ(o.kind, FaultKind::kTimeout);
  EXPECT_TRUE(o.retryable());
  // The caller is charged the budget it waited, not the full tail latency.
  EXPECT_DOUBLE_EQ(o.latency_ms, 500.0);
}

TEST(FaultInjectorTest, CorruptionOnlyOnSignatureFetches) {
  FaultInjector injector(13);
  FaultProfile stale;
  stale.corrupt_signature_prob = 1.0;
  injector.SetProfile(6, stale);

  EXPECT_TRUE(injector.NextScanOutcome(6).ok());
  FaultOutcome fetch = injector.NextSignatureOutcome(6);
  EXPECT_EQ(fetch.kind, FaultKind::kCorruptSignature);
  EXPECT_FALSE(fetch.retryable());
  EXPECT_NE(fetch.corruption_seed, 0u);
}

// ------------------------------------------------------- sketch corruption

TEST(PcsaCorruptionTest, DeterministicAndInflating) {
  PcsaConfig config;
  config.num_maps = 64;
  PcsaSketch sketch(config);
  for (uint64_t t = 0; t < 5000; ++t) sketch.Add(t);

  PcsaSketch corrupt = sketch.CorruptedCopy(0xDEAD);
  EXPECT_EQ(corrupt.bitmaps(), sketch.CorruptedCopy(0xDEAD).bitmaps());
  EXPECT_NE(corrupt.bitmaps(), sketch.bitmaps());
  // Extending runs of low ones can only raise the FM estimate.
  EXPECT_GE(corrupt.Estimate(), sketch.Estimate());
  EXPECT_GT(corrupt.Estimate(), sketch.Estimate() * 1.001);

  // Same config: the corrupted copy still merges, and OR-merging the
  // honest sketch back cannot undo the corruption.
  PcsaSketch merged = corrupt;
  ASSERT_TRUE(merged.MergeFrom(sketch).ok());
  EXPECT_EQ(merged.bitmaps(), corrupt.bitmaps());
}

TEST(SignatureCacheTest, OverrideSketchInvalidatesTouchedMemos) {
  ReliabilityFixture f;
  PcsaConfig pcsa;
  pcsa.num_maps = 64;
  SignatureCache cache(f.universe, pcsa);

  const double union01 = cache.EstimateUnion({0, 1});  // memoized, dirty
  const double union23 = cache.EstimateUnion({2, 3});  // memoized, clean
  ASSERT_EQ(cache.memo_stats().entries, 2u);

  PcsaSketch corrupt = cache.SketchOf(0)->CorruptedCopy(0xBEEF);
  cache.OverrideSketch(0, corrupt);
  EXPECT_EQ(cache.memo_stats().invalidations, 1u);
  EXPECT_TRUE(cache.IsCooperative(0));
  EXPECT_EQ(cache.SketchOf(0)->bitmaps(), corrupt.bitmaps());

  // The untouched memo survives; the dirty subset re-estimates inflated.
  const size_t hits_before = cache.memo_stats().hits;
  EXPECT_DOUBLE_EQ(cache.EstimateUnion({2, 3}), union23);
  EXPECT_EQ(cache.memo_stats().hits, hits_before + 1);
  EXPECT_GE(cache.EstimateUnion({0, 1}), union01);

  // Overriding with nullopt tombstones the source entirely.
  cache.OverrideSketch(0, std::nullopt);
  EXPECT_FALSE(cache.IsCooperative(0));
  EXPECT_EQ(cache.SketchOf(0), nullptr);
  EXPECT_DOUBLE_EQ(cache.EstimateUnion({0, 1}), cache.EstimateUnion({1}));
}

// ------------------------------------------------- faulty signature fetch

TEST(FaultySignatureFetchTest, CorruptFetchPerturbsTheBuiltSketch) {
  ReliabilityFixture f;
  PcsaConfig pcsa;
  pcsa.num_maps = 64;
  SignatureCache honest(f.universe, pcsa);

  FaultInjector injector(7);
  FaultProfile stale;
  stale.corrupt_signature_prob = 1.0;
  injector.SetProfile(0, stale);
  SignatureCache faulty(f.universe, pcsa,
                        MakeFaultySignatureFetch(&injector));

  // Source 0 shipped wrong bytes on the cache's own build path; everyone
  // else is untouched. Corruption only ever inflates FM estimates.
  ASSERT_NE(faulty.SketchOf(0), nullptr);
  EXPECT_NE(faulty.SketchOf(0)->bitmaps(), honest.SketchOf(0)->bitmaps());
  EXPECT_EQ(faulty.SketchOf(1)->bitmaps(), honest.SketchOf(1)->bitmaps());
  EXPECT_GE(faulty.EstimateUnion({0}), honest.EstimateUnion({0}));

  // Same injector seed → the same schedule → bit-identical corruption.
  FaultInjector replay(7);
  replay.SetProfile(0, stale);
  SignatureCache again(f.universe, pcsa, MakeFaultySignatureFetch(&replay));
  EXPECT_EQ(again.SketchOf(0)->bitmaps(), faulty.SketchOf(0)->bitmaps());
}

TEST(FaultySignatureFetchTest, HardDownSourceShipsNoSignature) {
  ReliabilityFixture f;
  PcsaConfig pcsa;
  pcsa.num_maps = 64;
  FaultInjector injector(11);
  injector.SetProfile(1, ReliabilityFixture::HardDown());
  SignatureCache cache(f.universe, pcsa,
                       MakeFaultySignatureFetch(&injector));

  // The source is treated exactly like a non-cooperative one (§4): no
  // sketch, skipped in union estimates.
  EXPECT_FALSE(cache.IsCooperative(1));
  EXPECT_EQ(cache.SketchOf(1), nullptr);
  EXPECT_TRUE(cache.IsCooperative(0));
  EXPECT_DOUBLE_EQ(cache.EstimateUnion({0, 1}), cache.EstimateUnion({0}));
}

TEST(FaultySignatureFetchTest, HookRidesEngineBuildAndChurnRefresh) {
  ReliabilityFixture f;
  FaultInjector injector(13);
  FaultProfile stale;
  stale.corrupt_signature_prob = 1.0;
  injector.SetProfile(0, stale);

  MubeConfig config = MubeConfig::PaperDefaults();
  config.pcsa.num_maps = 64;
  config.signature_fetch_hook = MakeFaultySignatureFetch(&injector);

  DeltaUniverse du(std::move(f.universe));
  auto mube = Mube::Create(&du.universe(), config).ValueOrDie();
  // The initial build fetched the profiled source's signature through the
  // injector — no cache-boundary override involved. Profile-free sources
  // ride the no-fault fast path (no schedule position consumed).
  EXPECT_EQ(injector.attempt_count(0), 1u);
  EXPECT_EQ(injector.attempt_count(1), 0u);

  // A re-crawl refreshes only the dirty source, again through the hook.
  ChurnDelta delta;
  ASSERT_TRUE(
      du.Apply(ChurnEvent::UpdateTuples("a.com", {5, 6, 7}), &delta).ok());
  ASSERT_TRUE(mube->ApplyDelta(delta).ok());
  EXPECT_EQ(injector.attempt_count(0), 2u);
  EXPECT_EQ(injector.attempt_count(1), 0u);

  // The engine stays fully functional on corrupted signatures.
  RunSpec spec;
  spec.seed = 3;
  EXPECT_TRUE(mube->Run(spec).ok());
}

// -------------------------------------------------------- reliable executor

TEST(ReliableExecutorTest, HealthyPathMatchesMediatedExecutor) {
  ReliabilityFixture f;
  MediatedExecutor plain(f.universe, f.sources, f.schema);
  ReliableExecutor resilient(f.universe, f.sources, f.schema);

  Query full_scan;
  Query filtered;
  filtered.predicates = {{0, CompareOp::kLt, 3}};
  for (const Query& query : {full_scan, filtered}) {
    Result<ExecutionResult> expected = plain.Execute(query);
    ASSERT_TRUE(expected.ok()) << expected.status().ToString();
    Result<ExecutionReport> got = resilient.Execute(query);
    ASSERT_TRUE(got.ok()) << got.status().ToString();

    const ExecutionReport& report = got.ValueOrDie();
    EXPECT_EQ(report.outcome, QueryOutcome::kAnswered);
    EXPECT_DOUBLE_EQ(report.completeness_estimate, 1.0);
    EXPECT_EQ(report.retries, 0u);

    const ExecutionResult& a = expected.ValueOrDie();
    const ExecutionResult& b = report.result;
    ASSERT_EQ(a.records.size(), b.records.size());
    for (size_t i = 0; i < a.records.size(); ++i) {
      ASSERT_EQ(a.records[i].tuple_id, b.records[i].tuple_id);
      ASSERT_EQ(a.records[i].ga_values, b.records[i].ga_values);
      ASSERT_EQ(a.records[i].provenance, b.records[i].provenance);
    }
    EXPECT_EQ(a.tuples_transferred, b.tuples_transferred);
    EXPECT_EQ(a.duplicates_merged, b.duplicates_merged);
    EXPECT_EQ(a.skipped_cannot_answer, b.skipped_cannot_answer);
    EXPECT_DOUBLE_EQ(a.total_cost_ms, b.total_cost_ms);
  }
}

TEST(ReliableExecutorTest, CannotAnswerIsSkippedNotFailed) {
  ReliabilityFixture f;
  ReliableExecutor executor(f.universe, f.sources, f.schema);
  Query by_author;
  by_author.predicates = {{1, CompareOp::kEq, 2}};
  Result<ExecutionReport> got = executor.Execute(by_author);
  ASSERT_TRUE(got.ok());
  const ExecutionReport& report = got.ValueOrDie();

  // c.com exposes no author: skipped, and the skip is not a failure.
  EXPECT_EQ(report.result.skipped_cannot_answer,
            (std::vector<uint32_t>{2}));
  ASSERT_EQ(report.scans.size(), 4u);
  EXPECT_EQ(report.scans[2].status, ScanStatus::kSkippedCannotAnswer);
  EXPECT_EQ(report.scans[2].attempts, 0u);
  EXPECT_EQ(report.outcome, QueryOutcome::kAnswered);
  EXPECT_EQ(report.sources_failed, 0u);
  EXPECT_EQ(executor.stats().skipped_cannot_answer, 1u);
}

TEST(ReliableExecutorTest, SiblingsKeepADegradedQueryAlive) {
  ReliabilityFixture f;
  FaultInjector injector(17);
  injector.SetProfile(0, ReliabilityFixture::HardDown());

  ReliableExecutor healthy(f.universe, f.sources, f.schema);
  ReliableExecutor degraded(f.universe, f.sources, f.schema);
  degraded.set_fault_injector(&injector);

  Result<ExecutionReport> healthy_run = healthy.Execute(Query{});
  Result<ExecutionReport> degraded_run = degraded.Execute(Query{});
  ASSERT_TRUE(healthy_run.ok());
  ASSERT_TRUE(degraded_run.ok());
  const ExecutionReport& report = degraded_run.ValueOrDie();

  EXPECT_EQ(report.outcome, QueryOutcome::kDegraded);
  EXPECT_EQ(report.sources_failed, 1u);
  EXPECT_EQ(report.sources_succeeded, 3u);
  EXPECT_EQ(report.scans[0].status, ScanStatus::kFailed);
  EXPECT_EQ(report.scans[0].last_fault, FaultKind::kHardDown);
  EXPECT_EQ(report.scans[0].attempts, 1u);  // hard-down is not retried

  // Both of a.com's GAs survive through siblings: nothing is actually lost
  // schema-wise, only tuples unique to a.com.
  EXPECT_EQ(report.failover_rescues, 2u);
  EXPECT_EQ(report.unrescued_gas, 0u);
  EXPECT_GT(report.completeness_estimate, 0.0);
  EXPECT_LT(report.completeness_estimate, 1.0);

  // The degraded answer is a strict subset of the healthy answer.
  std::set<uint64_t> healthy_ids;
  for (const MediatedRecord& r : healthy_run.ValueOrDie().result.records) {
    healthy_ids.insert(r.tuple_id);
  }
  const auto& degraded_records = report.result.records;
  EXPECT_LT(degraded_records.size(), healthy_ids.size());
  for (const MediatedRecord& r : degraded_records) {
    ASSERT_TRUE(healthy_ids.count(r.tuple_id)) << r.tuple_id;
  }
  // Tuples covered only by surviving sources are all still there:
  // b.com + c.com + d.com alone cover [0, 1000) and [2000, 6000).
  EXPECT_EQ(degraded_records.size(), 5000u);
}

TEST(ReliableExecutorTest, EverySourceDownIsAFailedQuery) {
  ReliabilityFixture f;
  FaultInjector injector(19);
  for (uint32_t sid : f.sources) {
    injector.SetProfile(sid, ReliabilityFixture::HardDown());
  }
  ReliableExecutor executor(f.universe, f.sources, f.schema);
  executor.set_fault_injector(&injector);

  Result<ExecutionReport> got = executor.Execute(Query{});
  ASSERT_TRUE(got.ok());
  const ExecutionReport& report = got.ValueOrDie();
  EXPECT_EQ(report.outcome, QueryOutcome::kFailed);
  EXPECT_EQ(report.sources_succeeded, 0u);
  EXPECT_DOUBLE_EQ(report.completeness_estimate, 0.0);
  EXPECT_TRUE(report.result.records.empty());
  EXPECT_EQ(report.failover_rescues, 0u);
  EXPECT_GT(report.unrescued_gas, 0u);
  EXPECT_EQ(executor.stats().failed, 1u);
}

TEST(ReliableExecutorTest, RetriesRecoverTransientFaults) {
  ReliabilityFixture f;
  FaultInjector injector(23);
  FaultProfile flaky;
  flaky.transient_failure_prob = 0.5;
  for (uint32_t sid : f.sources) injector.SetProfile(sid, flaky);

  ReliabilityOptions options;
  options.retry.max_attempts = 8;
  ReliableExecutor executor(f.universe, f.sources, f.schema, options);
  executor.set_fault_injector(&injector);

  Result<ExecutionReport> got = executor.Execute(Query{});
  ASSERT_TRUE(got.ok());
  const ExecutionReport& report = got.ValueOrDie();
  // With 8 attempts at 50% failure, every source recovers (the fixed seed
  // makes this exact, not probabilistic).
  EXPECT_EQ(report.outcome, QueryOutcome::kAnswered);
  EXPECT_GT(report.retries, 0u);
  EXPECT_EQ(executor.stats().retries, report.retries);
  // Backoff waits show up in the simulated timeline.
  EXPECT_GT(report.simulated_ms, 0.0);
}

TEST(ReliableExecutorTest, DeadlineBudgetCutsRetriesShort) {
  ReliabilityFixture f;
  FaultInjector injector(29);
  FaultProfile broken;
  broken.transient_failure_prob = 1.0;  // never succeeds, always retryable
  broken.extra_latency_ms = 300.0;
  for (uint32_t sid : f.sources) injector.SetProfile(sid, broken);

  ReliabilityOptions options;
  options.retry.max_attempts = 5;
  options.retry.base_backoff_ms = 50.0;
  options.retry.query_deadline_ms = 500.0;
  options.use_breakers = false;
  ReliableExecutor executor(f.universe, f.sources, f.schema, options);
  executor.set_fault_injector(&injector);

  Result<ExecutionReport> got = executor.Execute(Query{});
  ASSERT_TRUE(got.ok());
  const ExecutionReport& report = got.ValueOrDie();
  EXPECT_TRUE(report.deadline_exhausted);
  EXPECT_EQ(report.outcome, QueryOutcome::kFailed);
  for (const SourceScanLog& log : report.scans) {
    // 300 ms per attempt against a 500 ms budget: the 5-attempt policy is
    // cut to at most 2 attempts, and no timeline exceeds the budget by
    // more than the attempt that discovered it.
    EXPECT_LE(log.attempts, 2u);
    EXPECT_LE(log.simulated_ms, 300.0 + 500.0);
  }
  EXPECT_EQ(executor.stats().deadline_exhausted, 1u);
}

TEST(ReliableExecutorTest, BreakerShortCircuitsPersistentOffender) {
  ReliabilityFixture f;
  FaultInjector injector(31);
  injector.SetProfile(0, ReliabilityFixture::HardDown());

  ReliabilityOptions options;
  options.retry.max_attempts = 1;
  options.breaker.open_cooldown_ms = 1e12;  // stays open for the test
  ReliableExecutor executor(f.universe, f.sources, f.schema, options);
  executor.set_fault_injector(&injector);

  // min_samples failures open the breaker; the next query short-circuits.
  for (int q = 0; q < 4; ++q) {
    Result<ExecutionReport> got = executor.Execute(Query{});
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got.ValueOrDie().scans[0].status, ScanStatus::kFailed);
  }
  EXPECT_EQ(executor.stats().breaker_opens, 1u);

  Result<ExecutionReport> blocked = executor.Execute(Query{});
  ASSERT_TRUE(blocked.ok());
  EXPECT_EQ(blocked.ValueOrDie().scans[0].status,
            ScanStatus::kShortCircuited);
  EXPECT_EQ(blocked.ValueOrDie().scans[0].attempts, 0u);
  EXPECT_EQ(blocked.ValueOrDie().outcome, QueryOutcome::kDegraded);
  EXPECT_EQ(executor.stats().breaker_short_circuits, 1u);

  ASSERT_NE(executor.breakers().Find(0), nullptr);
  EXPECT_EQ(executor.breakers().Find(0)->state(executor.clock_ms()),
            BreakerState::kOpen);
}

TEST(ReliableExecutorTest, ReportsAreBitwiseDeterministic) {
  ReliabilityFixture f;
  FaultProfile flaky;
  flaky.transient_failure_prob = 0.35;
  flaky.extra_latency_ms = 5.0;
  flaky.latency_jitter_ms = 40.0;

  std::vector<std::string> first, second;
  for (std::vector<std::string>* out : {&first, &second}) {
    FaultInjector injector(0xFEEDF00D);
    for (uint32_t sid : f.sources) injector.SetProfile(sid, flaky);
    ReliableExecutor executor(f.universe, f.sources, f.schema);
    executor.set_fault_injector(&injector);
    for (int q = 0; q < 6; ++q) {
      Result<ExecutionReport> got = executor.Execute(Query{});
      ASSERT_TRUE(got.ok());
      out->push_back(got.ValueOrDie().Summary());
    }
    out->push_back(executor.stats().Summary());
  }
  EXPECT_EQ(first, second);
}

TEST(ReliableExecutorTest, PersistentFailureBecomesChurn) {
  ReliabilityFixture f;
  FaultInjector injector(37);
  injector.SetProfile(0, ReliabilityFixture::HardDown());

  ReliabilityOptions options;
  options.retry.max_attempts = 1;
  options.use_breakers = false;  // every query gathers fresh evidence
  ReliableExecutor executor(f.universe, f.sources, f.schema, options);
  executor.set_fault_injector(&injector);

  // Below the threshold (3): nothing to report yet.
  ASSERT_TRUE(executor.Execute(Query{}).ok());
  ASSERT_TRUE(executor.Execute(Query{}).ok());
  EXPECT_TRUE(executor.DrainPersistentFailureEvents().empty());

  // Crossing it: a source that never answered is reported as removed.
  ASSERT_TRUE(executor.Execute(Query{}).ok());
  std::vector<ChurnEvent> events = executor.DrainPersistentFailureEvents();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, ChurnEvent::Kind::kRemoveSource);
  EXPECT_EQ(events[0].source_name, "a.com");

  // Reported once: more failures do not re-report.
  ASSERT_TRUE(executor.Execute(Query{}).ok());
  EXPECT_TRUE(executor.DrainPersistentFailureEvents().empty());
}

TEST(ReliableExecutorTest, FormerlyHealthySourceGoesUncooperative) {
  ReliabilityFixture f;
  ReliabilityOptions options;
  options.retry.max_attempts = 1;
  options.use_breakers = false;
  ReliableExecutor executor(f.universe, f.sources, f.schema, options);

  // One healthy query first: a.com has answered before.
  ASSERT_TRUE(executor.Execute(Query{}).ok());

  FaultInjector injector(41);
  injector.SetProfile(0, ReliabilityFixture::HardDown());
  executor.set_fault_injector(&injector);
  for (int q = 0; q < 3; ++q) ASSERT_TRUE(executor.Execute(Query{}).ok());

  std::vector<ChurnEvent> events = executor.DrainPersistentFailureEvents();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, ChurnEvent::Kind::kSetCooperative);
  EXPECT_EQ(events[0].source_name, "a.com");
  EXPECT_FALSE(events[0].cooperative);

  // A success re-arms the persistence detector.
  executor.set_fault_injector(nullptr);
  ASSERT_TRUE(executor.Execute(Query{}).ok());
  executor.set_fault_injector(&injector);
  for (int q = 0; q < 3; ++q) ASSERT_TRUE(executor.Execute(Query{}).ok());
  EXPECT_EQ(executor.DrainPersistentFailureEvents().size(), 1u);
}

// -------------------------------------------------- session health surface

TEST(SessionReliabilityTest, RecordExecutionAggregatesHealth) {
  ReliabilityFixture f;
  MubeConfig config = MubeConfig::PaperDefaults();
  config.max_sources = 3;
  config.pcsa.num_maps = 64;
  auto session = Session::Create(&f.universe, config).ValueOrDie();

  ReliableExecutor healthy(f.universe, f.sources, f.schema);
  Result<ExecutionReport> ok_run = healthy.Execute(Query{});
  ASSERT_TRUE(ok_run.ok());
  session->RecordExecution(ok_run.ValueOrDie());

  FaultInjector injector(43);
  injector.SetProfile(0, ReliabilityFixture::HardDown());
  ReliableExecutor faulty(f.universe, f.sources, f.schema);
  faulty.set_fault_injector(&injector);
  Result<ExecutionReport> degraded_run = faulty.Execute(Query{});
  ASSERT_TRUE(degraded_run.ok());
  session->RecordExecution(degraded_run.ValueOrDie());

  const ReliabilityStats& stats = session->reliability_stats();
  EXPECT_EQ(stats.queries, 2u);
  EXPECT_EQ(stats.answered, 1u);
  EXPECT_EQ(stats.degraded, 1u);
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_EQ(stats.failover_rescues, 2u);

  const auto& health = session->source_health();
  ASSERT_TRUE(health.count(0));
  EXPECT_EQ(health.at(0).scans_ok, 1u);
  EXPECT_EQ(health.at(0).scans_failed, 1u);
  EXPECT_EQ(health.at(0).last_fault, FaultKind::kHardDown);
  ASSERT_TRUE(health.count(1));
  EXPECT_EQ(health.at(1).scans_ok, 2u);
  EXPECT_EQ(health.at(1).scans_failed, 0u);
  EXPECT_EQ(health.at(1).last_fault, FaultKind::kNone);
}

// ----------------------------------------------- churn-log persistence

GeneratorConfig PersistenceGen() {
  GeneratorConfig config;
  config.seed = 47;
  config.num_sources = 30;
  config.min_cardinality = 50;
  config.max_cardinality = 1'000;
  config.tuple_pool_size = 8'000;
  config.specialty_tuples_min = 10;
  config.specialty_tuples_max = 40;
  return config;
}

MubeConfig PersistenceConfig() {
  MubeConfig config = MubeConfig::PaperDefaults();
  config.max_sources = 5;
  config.optimizer_options.max_evaluations = 400;
  config.pcsa.num_maps = 64;
  return config;
}

TEST(SessionPersistenceTest, ChurnLogRoundTripsThroughSaveState) {
  GeneratedUniverse gen = GenerateUniverse(PersistenceGen()).ValueOrDie();
  DeltaUniverse original(std::move(gen.universe));
  auto session = Session::Create(&original, PersistenceConfig()).ValueOrDie();

  const std::string victim = original.universe().source(1).name();
  ASSERT_TRUE(session->ApplyChurn({ChurnEvent::RemoveSource(victim),
                                   ChurnEvent::SetCooperative(
                                       original.universe().source(4).name(),
                                       false)})
                  .ok());
  ASSERT_TRUE(session->PinSource(uint32_t{7}).ok());
  Result<std::string> saved = session->SaveState();
  ASSERT_TRUE(saved.ok()) << saved.status().ToString();
  EXPECT_NE(saved.ValueOrDie().find("churn_log begin"), std::string::npos);

  // A fresh session over a fresh copy of the same catalog replays the
  // churn suffix before resolving the pins.
  GeneratedUniverse regen = GenerateUniverse(PersistenceGen()).ValueOrDie();
  DeltaUniverse restored(std::move(regen.universe));
  auto fresh = Session::Create(&restored, PersistenceConfig()).ValueOrDie();
  Status status = fresh->RestoreState(saved.ValueOrDie());
  ASSERT_TRUE(status.ok()) << status.ToString();

  EXPECT_EQ(fresh->churn_log().size(), 2u);
  EXPECT_EQ(restored.universe().alive_count(),
            original.universe().alive_count());
  EXPECT_FALSE(restored.universe().alive(1));
  EXPECT_FALSE(restored.universe().source(4).has_tuples());
  EXPECT_EQ(fresh->pinned_sources(), (std::vector<uint32_t>{7}));

  // Restoring is a fixed point: saving again reproduces the blob.
  Result<std::string> resaved = fresh->SaveState();
  ASSERT_TRUE(resaved.ok());
  EXPECT_EQ(resaved.ValueOrDie(), saved.ValueOrDie());

  // A session whose log already matches the blob restores as a no-op
  // (empty suffix), not an error.
  EXPECT_TRUE(fresh->RestoreState(saved.ValueOrDie()).ok());
  EXPECT_EQ(fresh->churn_log().size(), 2u);
}

TEST(SessionPersistenceTest, StaticSessionRejectsChurnBlobs) {
  GeneratedUniverse gen = GenerateUniverse(PersistenceGen()).ValueOrDie();
  DeltaUniverse du(std::move(gen.universe));
  auto churny = Session::Create(&du, PersistenceConfig()).ValueOrDie();
  ASSERT_TRUE(churny
                  ->ApplyChurn({ChurnEvent::RemoveSource(
                      du.universe().source(0).name())})
                  .ok());
  Result<std::string> saved = churny->SaveState();
  ASSERT_TRUE(saved.ok());

  GeneratedUniverse regen = GenerateUniverse(PersistenceGen()).ValueOrDie();
  auto fixed = Session::Create(&regen.universe, PersistenceConfig())
                   .ValueOrDie();
  Status status = fixed->RestoreState(saved.ValueOrDie());
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
}

TEST(SessionPersistenceTest, DivergedChurnHistoryIsRejected) {
  GeneratedUniverse gen = GenerateUniverse(PersistenceGen()).ValueOrDie();
  DeltaUniverse du(std::move(gen.universe));
  auto session = Session::Create(&du, PersistenceConfig()).ValueOrDie();
  ASSERT_TRUE(session
                  ->ApplyChurn({ChurnEvent::RemoveSource(
                      du.universe().source(2).name())})
                  .ok());
  Result<std::string> saved = session->SaveState();
  ASSERT_TRUE(saved.ok());

  // A session that already applied *different* churn cannot replay the
  // blob: its history is not a prefix of the saved log.
  GeneratedUniverse regen = GenerateUniverse(PersistenceGen()).ValueOrDie();
  DeltaUniverse other(std::move(regen.universe));
  auto diverged = Session::Create(&other, PersistenceConfig()).ValueOrDie();
  ASSERT_TRUE(diverged
                  ->ApplyChurn({ChurnEvent::RemoveSource(
                      other.universe().source(3).name())})
                  .ok());
  EXPECT_FALSE(diverged->RestoreState(saved.ValueOrDie()).ok());

  // So does one whose log is already longer than the blob's.
  ASSERT_TRUE(session
                  ->ApplyChurn({ChurnEvent::RemoveSource(
                      du.universe().source(5).name())})
                  .ok());
  Status shorter = session->RestoreState(saved.ValueOrDie());
  EXPECT_EQ(shorter.code(), StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace mube
