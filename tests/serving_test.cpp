// Tests for src/serving: epoch-based COW snapshot lifecycle (readers
// pinned across publish, reclaim-after-last-unpin, all-or-nothing churn,
// fork-vs-rebuild equivalence), per-tenant constraint state, and the
// multi-tenant service loop (admission control, batching, fixed-seed
// determinism per epoch, metrics). The concurrency tests here are the
// -DMUBE_SANITIZE=thread targets for the serving layer: readers run
// against pinned epochs while churn builds and publishes the next one.

#include <algorithm>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/mube.h"
#include "datagen/generator.h"
#include "dynamic/churn.h"
#include "dynamic/delta_universe.h"
#include "metrics/metrics.h"
#include "schema/universe.h"
#include "serving/service.h"
#include "serving/snapshot.h"
#include "serving/tenant.h"

namespace mube {
namespace {

Source MakeSource(const std::string& name,
                  const std::vector<std::string>& attrs,
                  std::vector<uint64_t> tuples = {}) {
  Source source(0, name);
  for (const std::string& attr : attrs) {
    source.AddAttribute(Attribute(attr));
  }
  if (!tuples.empty()) source.SetTuples(std::move(tuples));
  return source;
}

/// Same small hand-built catalog the dynamic tests use.
Universe SmallUniverse() {
  Universe universe;
  universe.AddSource(
      MakeSource("alpha.com", {"title", "author"}, {1, 2, 3, 4}));
  universe.AddSource(
      MakeSource("beta.com", {"book title", "price"}, {3, 4, 5}));
  universe.AddSource(
      MakeSource("gamma.com", {"author name", "isbn"}, {6, 7}));
  universe.AddSource(
      MakeSource("delta.com", {"title", "isbn number"}, {1, 8, 9}));
  return universe;
}

GeneratorConfig SmallGen(uint64_t seed = 17) {
  GeneratorConfig config;
  config.seed = seed;
  config.num_sources = 24;
  config.min_cardinality = 50;
  config.max_cardinality = 1'000;
  config.tuple_pool_size = 8'000;
  config.specialty_tuples_min = 10;
  config.specialty_tuples_max = 40;
  return config;
}

MubeConfig FastConfig() {
  MubeConfig config = MubeConfig::PaperDefaults();
  config.max_sources = 6;
  config.optimizer_options.max_evaluations = 400;
  config.optimizer_options.seed = 5;
  config.pcsa.num_maps = 64;
  return config;
}

/// One removal, one addition, one re-crawl, one rename, one cooperation
/// change — the standard mixed batch from the dynamic tests.
std::vector<ChurnEvent> MixedBatch(const Universe& universe) {
  return {
      ChurnEvent::RemoveSource(universe.source(2).name()),
      ChurnEvent::AddSource(
          MakeSource("newcomer.com", {"title", "author", "price in eur"},
                     {101, 102, 103, 104})),
      ChurnEvent::UpdateTuples(universe.source(0).name(), {1, 2, 42, 43}),
      ChurnEvent::RenameAttribute(universe.source(1).name(), 0,
                                  "full book title"),
      ChurnEvent::SetCooperative(universe.source(3).name(), false),
  };
}

std::unique_ptr<SnapshotManager> MakeManager(
    MetricsRegistry* registry = nullptr) {
  return SnapshotManager::Create(SmallUniverse(), FastConfig(), registry)
      .ValueOrDie();
}

// -------------------------------------------------------- SnapshotManager --

TEST(SnapshotManagerTest, EpochZeroServesTheInitialCatalog) {
  std::unique_ptr<SnapshotManager> manager = MakeManager();
  EXPECT_EQ(manager->current_epoch(), 0u);
  EXPECT_EQ(manager->live_epoch_count(), 1u);
  EXPECT_EQ(manager->published_count(), 0u);

  SnapshotManager::Lease lease = manager->Acquire();
  ASSERT_TRUE(lease.valid());
  EXPECT_EQ(lease.epoch(), 0u);
  EXPECT_EQ(lease.universe().size(), 4u);

  RunSpec spec;
  spec.seed = 11;
  Result<MubeResult> result = lease.engine().Run(spec);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result.ValueOrDie().solution.feasible);
}

TEST(SnapshotManagerTest, ReaderPinnedAcrossPublishSeesFrozenEpoch) {
  std::unique_ptr<SnapshotManager> manager = MakeManager();
  SnapshotManager::Lease pinned = manager->Acquire();

  RunSpec spec;
  spec.seed = 23;
  const MubeResult before = pinned.engine().Run(spec).ValueOrDie();

  ASSERT_TRUE(manager->ApplyChurn(MixedBatch(pinned.universe())).ok());
  EXPECT_EQ(manager->current_epoch(), 1u);
  EXPECT_EQ(manager->published_count(), 1u);
  // The superseded epoch stays alive: our lease still pins it.
  EXPECT_EQ(manager->live_epoch_count(), 2u);

  // New readers land on the churned catalog...
  SnapshotManager::Lease fresh = manager->Acquire();
  EXPECT_EQ(fresh.epoch(), 1u);
  EXPECT_TRUE(fresh.universe().FindSource("newcomer.com").has_value());
  EXPECT_FALSE(fresh.universe().alive(2));  // gamma.com removed

  // ...while the pinned reader's world is frozen: same catalog, and the
  // exact same selection for the same spec.
  EXPECT_FALSE(pinned.universe().FindSource("newcomer.com").has_value());
  EXPECT_TRUE(pinned.universe().alive(2));
  const MubeResult after = pinned.engine().Run(spec).ValueOrDie();
  EXPECT_EQ(after.solution.sources, before.solution.sources);
  EXPECT_DOUBLE_EQ(after.solution.overall, before.solution.overall);

  // Dropping the last pin reclaims the superseded epoch.
  pinned.Release();
  EXPECT_EQ(manager->live_epoch_count(), 1u);
}

TEST(SnapshotManagerTest, RejectedBatchPublishesNothing) {
  MetricsRegistry registry;
  std::unique_ptr<SnapshotManager> manager = MakeManager(&registry);

  // The valid prefix must not leak: all-or-nothing, unlike
  // Session::ApplyChurn's applied-prefix contract.
  const std::vector<ChurnEvent> batch = {
      ChurnEvent::AddSource(MakeSource("fresh.com", {"title"}, {77})),
      ChurnEvent::RemoveSource("no-such-source.com"),
  };
  EXPECT_FALSE(manager->ApplyChurn(batch).ok());

  EXPECT_EQ(manager->current_epoch(), 0u);
  EXPECT_EQ(manager->published_count(), 0u);
  EXPECT_EQ(manager->live_epoch_count(), 1u);
  SnapshotManager::Lease lease = manager->Acquire();
  EXPECT_EQ(lease.epoch(), 0u);
  EXPECT_FALSE(lease.universe().FindSource("fresh.com").has_value());
  EXPECT_EQ(
      registry.GetCounter("serving_churn_rejected_total")->Value(), 1u);
  EXPECT_EQ(
      registry.GetCounter("serving_epochs_published_total")->Value(), 0u);
}

/// The COW fork is only correct if a forked-then-reconciled epoch is
/// indistinguishable from an engine built from scratch over the churned
/// catalog — same similarity state, same sketches, same selections.
TEST(SnapshotManagerTest, ForkedEpochMatchesFreshRebuild) {
  for (const char* measure : {"jaccard3", "tfidf_cosine"}) {
    MubeConfig config = FastConfig();
    config.similarity_measure = measure;

    const Universe initial = SmallUniverse();
    const std::vector<ChurnEvent> events = MixedBatch(initial);

    std::unique_ptr<SnapshotManager> manager =
        SnapshotManager::Create(initial, config, nullptr).ValueOrDie();
    ASSERT_TRUE(manager->ApplyChurn(events).ok());
    SnapshotManager::Lease lease = manager->Acquire();
    ASSERT_EQ(lease.epoch(), 1u);

    DeltaUniverse rebuilt(SmallUniverse());
    ChurnDelta delta;
    ASSERT_TRUE(rebuilt.ApplyAll(events, &delta).ok());
    std::unique_ptr<Mube> fresh =
        Mube::Create(&rebuilt.universe(), config).ValueOrDie();

    RunSpec spec;
    spec.seed = 31;
    const MubeResult forked = lease.engine().Run(spec).ValueOrDie();
    const MubeResult scratch = fresh->Run(spec).ValueOrDie();
    EXPECT_EQ(forked.solution.sources, scratch.solution.sources) << measure;
    EXPECT_DOUBLE_EQ(forked.solution.overall, scratch.solution.overall)
        << measure;
  }
}

/// The TSan target: readers Run() against pinned epochs while a writer
/// clones, churns, reconciles, and publishes new ones. No reader ever
/// blocks on the writer; every superseded epoch is reclaimed once its
/// last reader unpins; fixed seeds stay deterministic per epoch.
TEST(SnapshotManagerTest, ConcurrentReadersAcrossChurn) {
  GeneratedUniverse gen = GenerateUniverse(SmallGen(23)).ValueOrDie();
  std::vector<std::string> names;
  for (uint32_t sid = 0; sid < gen.universe.size(); ++sid) {
    names.push_back(gen.universe.source(sid).name());
  }
  std::unique_ptr<SnapshotManager> manager =
      SnapshotManager::Create(gen.universe, FastConfig(), nullptr)
          .ValueOrDie();

  constexpr int kReaders = 4;
  constexpr int kRunsPerReader = 5;
  constexpr int kChurnBatches = 4;

  struct Observation {
    uint64_t epoch;
    uint64_t seed;
    std::vector<uint32_t> sources;
  };
  std::vector<std::vector<Observation>> observed(kReaders);

  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&manager, &observed, r] {
      for (int i = 0; i < kRunsPerReader; ++i) {
        SnapshotManager::Lease lease = manager->Acquire();
        RunSpec spec;
        // Seeds are shared across readers so concurrent observations of
        // the same (epoch, seed) pair exist and must agree.
        spec.seed = 100 + i;
        const MubeResult result = lease.engine().Run(spec).ValueOrDie();
        observed[r].push_back(
            Observation{lease.epoch(), *spec.seed, result.solution.sources});
      }
    });
  }
  std::thread writer([&manager, &names] {
    for (int b = 0; b < kChurnBatches; ++b) {
      const std::vector<ChurnEvent> batch = {
          ChurnEvent::UpdateTuples(
              names[b], {static_cast<uint64_t>(9000 + b), 9100, 9200}),
          ChurnEvent::AddSource(MakeSource(
              "churned-" + std::to_string(b) + ".com", {"title", "price"},
              {static_cast<uint64_t>(9300 + b)})),
      };
      ASSERT_TRUE(manager->ApplyChurn(batch).ok());
    }
  });
  for (std::thread& reader : readers) reader.join();
  writer.join();

  // Quiescent: every lease dropped, so only the current epoch survives.
  EXPECT_EQ(manager->current_epoch(),
            static_cast<uint64_t>(kChurnBatches));
  EXPECT_EQ(manager->published_count(),
            static_cast<uint64_t>(kChurnBatches));
  EXPECT_EQ(manager->live_epoch_count(), 1u);

  // Determinism per epoch: identical (epoch, seed) pairs — no matter
  // which thread ran them, or what churn was in flight — selected the
  // exact same sources.
  std::map<std::pair<uint64_t, uint64_t>, std::vector<uint32_t>> canonical;
  size_t cross_checked = 0;
  for (const std::vector<Observation>& per_thread : observed) {
    ASSERT_EQ(per_thread.size(), static_cast<size_t>(kRunsPerReader));
    for (const Observation& obs : per_thread) {
      auto [it, inserted] =
          canonical.try_emplace({obs.epoch, obs.seed}, obs.sources);
      if (!inserted) {
        EXPECT_EQ(it->second, obs.sources)
            << "epoch " << obs.epoch << " seed " << obs.seed;
        ++cross_checked;
      }
    }
  }
  // Replay against the final epoch: observations recorded on it must
  // reproduce exactly.
  SnapshotManager::Lease final_lease = manager->Acquire();
  for (const auto& [key, sources] : canonical) {
    if (key.first != final_lease.epoch()) continue;
    RunSpec spec;
    spec.seed = key.second;
    EXPECT_EQ(final_lease.engine().Run(spec).ValueOrDie().solution.sources,
              sources);
  }
  // With 4 readers sharing 5 seeds, collisions are guaranteed.
  EXPECT_GT(cross_checked, 0u);
}

// ----------------------------------------------------------------- Tenant --

TEST(TenantTest, ValidatesConstraintEditsLikeSession) {
  const Universe universe = SmallUniverse();
  Tenant tenant("alice");

  EXPECT_TRUE(tenant.PinSource(universe, "alpha.com").ok());
  EXPECT_FALSE(tenant.PinSource(universe, "alpha.com").ok());  // dup
  EXPECT_FALSE(tenant.PinSource(universe, "nope.com").ok());
  EXPECT_FALSE(tenant.PinSource(universe, 99).ok());
  EXPECT_TRUE(tenant.PinSource(universe, 2).ok());
  EXPECT_EQ(tenant.pinned_sources(), (std::vector<uint32_t>{0, 2}));
  EXPECT_TRUE(tenant.UnpinSource(2).ok());
  EXPECT_FALSE(tenant.UnpinSource(2).ok());

  EXPECT_FALSE(tenant.SetTheta(1.5).ok());
  EXPECT_TRUE(tenant.SetTheta(0.4).ok());
  EXPECT_FALSE(tenant.SetMaxSources(0).ok());
  EXPECT_TRUE(tenant.SetMaxSources(3).ok());
  EXPECT_FALSE(tenant.SetOptimizer("annealing-of-doom").ok());
  EXPECT_TRUE(tenant.SetOptimizer("sls").ok());
  EXPECT_FALSE(tenant.SetWeights(3, {0.5, 0.5}).ok());       // count
  EXPECT_FALSE(tenant.SetWeights(2, {0.9, 0.9}).ok());       // sum
  EXPECT_TRUE(tenant.SetWeights(2, {0.25, 0.75}).ok());

  RunSpec spec = tenant.BuildRunSpec(universe, 77);
  EXPECT_EQ(spec.source_constraints, (std::vector<uint32_t>{0}));
  EXPECT_EQ(spec.theta, 0.4);
  EXPECT_EQ(spec.max_sources, 3u);
  EXPECT_EQ(spec.optimizer, "sls");
  EXPECT_EQ(spec.weights, (std::vector<double>{0.25, 0.75}));
  EXPECT_EQ(spec.seed, 77u);
}

TEST(TenantTest, StalePinsAndGasAreShedAtSpecBuildTime) {
  DeltaUniverse catalog(SmallUniverse());
  Tenant tenant("bob");
  ASSERT_TRUE(tenant.PinSource(catalog.universe(), "gamma.com").ok());
  ASSERT_TRUE(tenant.PinSource(catalog.universe(), "alpha.com").ok());
  GlobalAttribute ga({AttributeRef(2, 0), AttributeRef(0, 1)});
  ASSERT_TRUE(tenant.AddGaConstraint(catalog.universe(), ga).ok());

  // gamma.com (id 2) retires; the pin and the GA that references it are
  // dropped lazily at spec-build time, the alpha pin survives.
  ChurnDelta delta;
  ASSERT_TRUE(
      catalog.ApplyAll({ChurnEvent::RemoveSource("gamma.com")}, &delta)
          .ok());
  RunSpec spec = tenant.BuildRunSpec(catalog.universe(), 1);
  EXPECT_EQ(spec.source_constraints, (std::vector<uint32_t>{0}));
  EXPECT_EQ(spec.ga_constraints.gas().size(), 0u);
}

// ---------------------------------------------------------------- Service --

ServiceOptions SmallServiceOptions() {
  ServiceOptions options;
  options.queue_capacity = 64;
  options.max_batch = 4;
  options.worker_threads = 2;
  return options;
}

TEST(MubeServiceTest, RegisterRefineAndAlternatives) {
  std::unique_ptr<MubeService> service =
      MubeService::Create(SmallUniverse(), FastConfig(),
                          SmallServiceOptions())
          .ValueOrDie();

  Result<Tenant*> alice = service->RegisterTenant("alice");
  ASSERT_TRUE(alice.ok());
  EXPECT_EQ(service->RegisterTenant("alice").status().code(),
            StatusCode::kAlreadyExists);
  EXPECT_FALSE(service->RegisterTenant("").ok());
  EXPECT_EQ(service->FindTenant("alice"), alice.ValueOrDie());
  EXPECT_EQ(service->FindTenant("nobody"), nullptr);

  RefineRequest request;
  request.tenant = "nobody";
  EXPECT_EQ(service->Refine(request).status.code(), StatusCode::kNotFound);

  request.tenant = "alice";
  request.seed = 7;
  RefineResponse response = service->Refine(request);
  ASSERT_TRUE(response.status.ok()) << response.status.ToString();
  ASSERT_EQ(response.results.size(), 1u);
  EXPECT_TRUE(response.results[0].solution.feasible);
  EXPECT_EQ(response.epoch, 0u);

  // A portfolio request returns up to `alternatives` *distinct* solutions
  // (a catalog this small may collapse to fewer), best first.
  request.alternatives = 3;
  response = service->Refine(request);
  ASSERT_TRUE(response.status.ok()) << response.status.ToString();
  ASSERT_GE(response.results.size(), 1u);
  ASSERT_LE(response.results.size(), 3u);
  for (size_t i = 1; i < response.results.size(); ++i) {
    EXPECT_GE(response.results[i - 1].solution.overall,
              response.results[i].solution.overall);
  }
}

TEST(MubeServiceTest, TenantConstraintsShapeSelectionsAcrossChurn) {
  std::unique_ptr<MubeService> service =
      MubeService::Create(SmallUniverse(), FastConfig(),
                          SmallServiceOptions())
          .ValueOrDie();
  Tenant* bob = service->RegisterTenant("bob").ValueOrDie();
  {
    SnapshotManager::Lease lease = service->snapshots().Acquire();
    ASSERT_TRUE(bob->PinSource(lease.universe(), "alpha.com").ok());
    ASSERT_TRUE(bob->SetTheta(0.2).ok());
  }

  RefineRequest request;
  request.tenant = "bob";
  request.seed = 3;
  RefineResponse response = service->Refine(request);
  ASSERT_TRUE(response.status.ok()) << response.status.ToString();
  const std::vector<uint32_t>& chosen = response.results[0].solution.sources;
  EXPECT_NE(std::find(chosen.begin(), chosen.end(), 0u), chosen.end());

  // The pinned source retires. The service keeps answering: the stale pin
  // is shed at spec-build time against the new epoch.
  ASSERT_TRUE(
      service->ApplyChurn({ChurnEvent::RemoveSource("alpha.com")}).ok());
  response = service->Refine(request);
  ASSERT_TRUE(response.status.ok()) << response.status.ToString();
  EXPECT_EQ(response.epoch, 1u);
  const std::vector<uint32_t>& after = response.results[0].solution.sources;
  EXPECT_EQ(std::find(after.begin(), after.end(), 0u), after.end());
}

TEST(MubeServiceTest, FixedSeedStreamIsDeterministicPerEpoch) {
  GeneratedUniverse gen = GenerateUniverse(SmallGen(29)).ValueOrDie();
  std::unique_ptr<MubeService> service =
      MubeService::Create(gen.universe, FastConfig(), SmallServiceOptions())
          .ValueOrDie();
  ASSERT_TRUE(service->RegisterTenant("carol").ok());

  auto submit_wave = [&service]() {
    std::vector<ResponseFuture> futures;
    for (int i = 0; i < 12; ++i) {
      RefineRequest request;
      request.tenant = "carol";
      request.seed = 1 + (i % 3);  // three seeds, four submissions each
      futures.push_back(service->Submit(request).ValueOrDie());
    }
    std::map<std::pair<uint64_t, uint64_t>, std::vector<uint32_t>> by_key;
    for (int i = 0; i < 12; ++i) {
      const RefineResponse response = futures[i].Wait();
      EXPECT_TRUE(response.status.ok()) << response.status.ToString();
      const uint64_t seed = 1 + (i % 3);
      auto [it, inserted] = by_key.try_emplace(
          {response.epoch, seed}, response.results[0].solution.sources);
      if (!inserted) {
        EXPECT_EQ(it->second, response.results[0].solution.sources)
            << "epoch " << response.epoch << " seed " << seed;
      }
    }
    return by_key;
  };

  auto epoch0 = submit_wave();
  ASSERT_TRUE(service
                  ->ApplyChurn({ChurnEvent::UpdateTuples(
                      gen.universe.source(0).name(), {1, 2, 3})})
                  .ok());
  auto epoch1 = submit_wave();
  // Distinct epochs may (and here, with a re-crawled source, do) exist;
  // within each wave every repeated seed agreed — asserted above.
  EXPECT_EQ(epoch1.begin()->first.first, 1u);
  EXPECT_EQ(epoch0.begin()->first.first, 0u);
}

TEST(MubeServiceTest, AdmissionControlRejectsWhenTheQueueIsFull) {
  ServiceOptions options;
  options.queue_capacity = 1;
  options.max_batch = 1;
  options.worker_threads = 1;
  std::unique_ptr<MubeService> service =
      MubeService::Create(SmallUniverse(), FastConfig(), options)
          .ValueOrDie();
  ASSERT_TRUE(service->RegisterTenant("dave").ok());

  // Flood a single-slot queue with slow portfolio requests until one is
  // turned away. The dispatcher is busy for many milliseconds per request,
  // so a tight submit loop must eventually find the queue occupied.
  RefineRequest request;
  request.tenant = "dave";
  request.alternatives = 4;
  std::vector<ResponseFuture> accepted;
  bool rejected = false;
  for (int i = 0; i < 20'000 && !rejected; ++i) {
    request.seed = i + 1;
    Result<ResponseFuture> submitted = service->Submit(request);
    if (submitted.ok()) {
      accepted.push_back(submitted.MoveValueUnsafe());
    } else {
      EXPECT_EQ(submitted.status().code(), StatusCode::kUnavailable);
      rejected = true;
    }
  }
  EXPECT_TRUE(rejected);
  service->Drain();
  for (const ResponseFuture& future : accepted) {
    EXPECT_TRUE(future.Ready());
    EXPECT_TRUE(future.Wait().status.ok());
  }
}

TEST(MubeServiceTest, StopDrainsAdmittedWorkAndRejectsNew) {
  std::unique_ptr<MubeService> service =
      MubeService::Create(SmallUniverse(), FastConfig(),
                          SmallServiceOptions())
          .ValueOrDie();
  ASSERT_TRUE(service->RegisterTenant("erin").ok());

  RefineRequest request;
  request.tenant = "erin";
  request.seed = 9;
  ResponseFuture admitted = service->Submit(request).ValueOrDie();
  service->Stop();
  service->Stop();  // idempotent

  // Work admitted before Stop() completes; work after is turned away.
  EXPECT_TRUE(admitted.Ready());
  EXPECT_TRUE(admitted.Wait().status.ok());
  EXPECT_EQ(service->Submit(request).status().code(),
            StatusCode::kUnavailable);
  EXPECT_EQ(service->Refine(request).status.code(),
            StatusCode::kUnavailable);
}

/// Service-level churn/read race (the second TSan target): tenants keep
/// refining while the catalog churns; nobody blocks, nothing leaks.
TEST(MubeServiceTest, ChurnNeverBlocksInFlightRequests) {
  GeneratedUniverse gen = GenerateUniverse(SmallGen(31)).ValueOrDie();
  ServiceOptions options;
  options.queue_capacity = 128;
  options.max_batch = 8;
  options.worker_threads = 4;
  MetricsRegistry registry;
  std::unique_ptr<MubeService> service =
      MubeService::Create(gen.universe, FastConfig(), options, &registry)
          .ValueOrDie();
  for (const char* name : {"t0", "t1", "t2", "t3"}) {
    ASSERT_TRUE(service->RegisterTenant(name).ok());
  }

  std::vector<ResponseFuture> futures;
  for (int i = 0; i < 24; ++i) {
    RefineRequest request;
    request.tenant = "t" + std::to_string(i % 4);
    request.seed = i + 1;
    Result<ResponseFuture> submitted = service->Submit(request);
    ASSERT_TRUE(submitted.ok());
    futures.push_back(submitted.MoveValueUnsafe());
    if (i % 6 == 5) {
      ASSERT_TRUE(service
                      ->ApplyChurn({ChurnEvent::UpdateTuples(
                          gen.universe.source(i % 8).name(),
                          {static_cast<uint64_t>(7000 + i)})})
                      .ok());
    }
  }
  service->Drain();
  for (const ResponseFuture& future : futures) {
    const RefineResponse response = future.Wait();
    EXPECT_TRUE(response.status.ok()) << response.status.ToString();
    EXPECT_LE(response.epoch, 4u);
  }
  // Quiescent after the drain: every batch lease dropped, superseded
  // epochs reclaimed.
  EXPECT_EQ(service->snapshots().live_epoch_count(), 1u);
  EXPECT_EQ(service->snapshots().published_count(), 4u);

  // The unified registry saw the serving layer AND the engine hot paths.
  EXPECT_GE(registry.GetCounter("serving_requests_total")->Value(), 24u);
  EXPECT_EQ(registry.GetCounter("serving_epochs_published_total")->Value(),
            4u);
  EXPECT_GT(registry.GetCounter("serving_batches_total")->Value(), 0u);
  EXPECT_GE(registry.GetCounter("mube_runs_total")->Value(), 24u);
  EXPECT_GT(registry.GetCounter("mube_optimizer_evaluations_total")->Value(),
            0u);
  EXPECT_GT(registry.GetCounter("mube_match_calls_total")->Value(), 0u);
  EXPECT_GT(registry.GetCounter("mube_match_memo_misses_total")->Value(),
            0u);
  EXPECT_GT(registry.GetCounter("mube_union_memo_misses_total")->Value(),
            0u);
  EXPECT_GT(registry.GetCounter("mube_measure_calls_total")->Value(), 0u);
  EXPECT_EQ(registry.GetCounter("mube_churn_batches_total")->Value(), 4u);

  const std::string text = registry.Expose();
  EXPECT_NE(text.find("# TYPE mube_run_seconds histogram"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE serving_request_run_seconds histogram"),
            std::string::npos);
  EXPECT_NE(text.find("serving_staleness_epochs_bucket"),
            std::string::npos);
}

}  // namespace
}  // namespace mube
