// Tests for src/serving: epoch-based COW snapshot lifecycle (readers
// pinned across publish, reclaim-after-last-unpin, all-or-nothing churn,
// fork-vs-rebuild equivalence), per-tenant constraint state, and the
// multi-tenant service loop (admission control, batching, fixed-seed
// determinism per epoch, metrics). The concurrency tests here are the
// -DMUBE_SANITIZE=thread targets for the serving layer: readers run
// against pinned epochs while churn builds and publishes the next one.

#include <algorithm>
#include <atomic>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/mube.h"
#include "datagen/generator.h"
#include "dynamic/churn.h"
#include "dynamic/delta_universe.h"
#include "metrics/metrics.h"
#include "reliability/fault_injector.h"
#include "schema/universe.h"
#include "serving/breaker_registry.h"
#include "serving/service.h"
#include "serving/snapshot.h"
#include "serving/tenant.h"

namespace mube {
namespace {

Source MakeSource(const std::string& name,
                  const std::vector<std::string>& attrs,
                  std::vector<uint64_t> tuples = {}) {
  Source source(0, name);
  for (const std::string& attr : attrs) {
    source.AddAttribute(Attribute(attr));
  }
  if (!tuples.empty()) source.SetTuples(std::move(tuples));
  return source;
}

/// Same small hand-built catalog the dynamic tests use.
Universe SmallUniverse() {
  Universe universe;
  universe.AddSource(
      MakeSource("alpha.com", {"title", "author"}, {1, 2, 3, 4}));
  universe.AddSource(
      MakeSource("beta.com", {"book title", "price"}, {3, 4, 5}));
  universe.AddSource(
      MakeSource("gamma.com", {"author name", "isbn"}, {6, 7}));
  universe.AddSource(
      MakeSource("delta.com", {"title", "isbn number"}, {1, 8, 9}));
  return universe;
}

GeneratorConfig SmallGen(uint64_t seed = 17) {
  GeneratorConfig config;
  config.seed = seed;
  config.num_sources = 24;
  config.min_cardinality = 50;
  config.max_cardinality = 1'000;
  config.tuple_pool_size = 8'000;
  config.specialty_tuples_min = 10;
  config.specialty_tuples_max = 40;
  return config;
}

MubeConfig FastConfig() {
  MubeConfig config = MubeConfig::PaperDefaults();
  config.max_sources = 6;
  config.optimizer_options.max_evaluations = 400;
  config.optimizer_options.seed = 5;
  config.pcsa.num_maps = 64;
  return config;
}

/// One removal, one addition, one re-crawl, one rename, one cooperation
/// change — the standard mixed batch from the dynamic tests.
std::vector<ChurnEvent> MixedBatch(const Universe& universe) {
  return {
      ChurnEvent::RemoveSource(universe.source(2).name()),
      ChurnEvent::AddSource(
          MakeSource("newcomer.com", {"title", "author", "price in eur"},
                     {101, 102, 103, 104})),
      ChurnEvent::UpdateTuples(universe.source(0).name(), {1, 2, 42, 43}),
      ChurnEvent::RenameAttribute(universe.source(1).name(), 0,
                                  "full book title"),
      ChurnEvent::SetCooperative(universe.source(3).name(), false),
  };
}

std::unique_ptr<SnapshotManager> MakeManager(
    MetricsRegistry* registry = nullptr) {
  return SnapshotManager::Create(SmallUniverse(), FastConfig(), registry)
      .ValueOrDie();
}

// -------------------------------------------------------- SnapshotManager --

TEST(SnapshotManagerTest, EpochZeroServesTheInitialCatalog) {
  std::unique_ptr<SnapshotManager> manager = MakeManager();
  EXPECT_EQ(manager->current_epoch(), 0u);
  EXPECT_EQ(manager->live_epoch_count(), 1u);
  EXPECT_EQ(manager->published_count(), 0u);

  SnapshotManager::Lease lease = manager->Acquire();
  ASSERT_TRUE(lease.valid());
  EXPECT_EQ(lease.epoch(), 0u);
  EXPECT_EQ(lease.universe().size(), 4u);

  RunSpec spec;
  spec.seed = 11;
  Result<MubeResult> result = lease.engine().Run(spec);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result.ValueOrDie().solution.feasible);
}

TEST(SnapshotManagerTest, ReaderPinnedAcrossPublishSeesFrozenEpoch) {
  std::unique_ptr<SnapshotManager> manager = MakeManager();
  SnapshotManager::Lease pinned = manager->Acquire();

  RunSpec spec;
  spec.seed = 23;
  const MubeResult before = pinned.engine().Run(spec).ValueOrDie();

  ASSERT_TRUE(manager->ApplyChurn(MixedBatch(pinned.universe())).ok());
  EXPECT_EQ(manager->current_epoch(), 1u);
  EXPECT_EQ(manager->published_count(), 1u);
  // The superseded epoch stays alive: our lease still pins it.
  EXPECT_EQ(manager->live_epoch_count(), 2u);

  // New readers land on the churned catalog...
  SnapshotManager::Lease fresh = manager->Acquire();
  EXPECT_EQ(fresh.epoch(), 1u);
  EXPECT_TRUE(fresh.universe().FindSource("newcomer.com").has_value());
  EXPECT_FALSE(fresh.universe().alive(2));  // gamma.com removed

  // ...while the pinned reader's world is frozen: same catalog, and the
  // exact same selection for the same spec.
  EXPECT_FALSE(pinned.universe().FindSource("newcomer.com").has_value());
  EXPECT_TRUE(pinned.universe().alive(2));
  const MubeResult after = pinned.engine().Run(spec).ValueOrDie();
  EXPECT_EQ(after.solution.sources, before.solution.sources);
  EXPECT_DOUBLE_EQ(after.solution.overall, before.solution.overall);

  // Dropping the last pin reclaims the superseded epoch.
  pinned.Release();
  EXPECT_EQ(manager->live_epoch_count(), 1u);
}

TEST(SnapshotManagerTest, RejectedBatchPublishesNothing) {
  MetricsRegistry registry;
  std::unique_ptr<SnapshotManager> manager = MakeManager(&registry);

  // The valid prefix must not leak: all-or-nothing, unlike
  // Session::ApplyChurn's applied-prefix contract.
  const std::vector<ChurnEvent> batch = {
      ChurnEvent::AddSource(MakeSource("fresh.com", {"title"}, {77})),
      ChurnEvent::RemoveSource("no-such-source.com"),
  };
  EXPECT_FALSE(manager->ApplyChurn(batch).ok());

  EXPECT_EQ(manager->current_epoch(), 0u);
  EXPECT_EQ(manager->published_count(), 0u);
  EXPECT_EQ(manager->live_epoch_count(), 1u);
  SnapshotManager::Lease lease = manager->Acquire();
  EXPECT_EQ(lease.epoch(), 0u);
  EXPECT_FALSE(lease.universe().FindSource("fresh.com").has_value());
  EXPECT_EQ(
      registry.GetCounter("serving_churn_rejected_total")->Value(), 1u);
  EXPECT_EQ(
      registry.GetCounter("serving_epochs_published_total")->Value(), 0u);
}

/// The COW fork is only correct if a forked-then-reconciled epoch is
/// indistinguishable from an engine built from scratch over the churned
/// catalog — same similarity state, same sketches, same selections.
TEST(SnapshotManagerTest, ForkedEpochMatchesFreshRebuild) {
  for (const char* measure : {"jaccard3", "tfidf_cosine"}) {
    MubeConfig config = FastConfig();
    config.similarity_measure = measure;

    const Universe initial = SmallUniverse();
    const std::vector<ChurnEvent> events = MixedBatch(initial);

    std::unique_ptr<SnapshotManager> manager =
        SnapshotManager::Create(initial, config, nullptr).ValueOrDie();
    ASSERT_TRUE(manager->ApplyChurn(events).ok());
    SnapshotManager::Lease lease = manager->Acquire();
    ASSERT_EQ(lease.epoch(), 1u);

    DeltaUniverse rebuilt(SmallUniverse());
    ChurnDelta delta;
    ASSERT_TRUE(rebuilt.ApplyAll(events, &delta).ok());
    std::unique_ptr<Mube> fresh =
        Mube::Create(&rebuilt.universe(), config).ValueOrDie();

    RunSpec spec;
    spec.seed = 31;
    const MubeResult forked = lease.engine().Run(spec).ValueOrDie();
    const MubeResult scratch = fresh->Run(spec).ValueOrDie();
    EXPECT_EQ(forked.solution.sources, scratch.solution.sources) << measure;
    EXPECT_DOUBLE_EQ(forked.solution.overall, scratch.solution.overall)
        << measure;
  }
}

/// The TSan target: readers Run() against pinned epochs while a writer
/// clones, churns, reconciles, and publishes new ones. No reader ever
/// blocks on the writer; every superseded epoch is reclaimed once its
/// last reader unpins; fixed seeds stay deterministic per epoch.
TEST(SnapshotManagerTest, ConcurrentReadersAcrossChurn) {
  GeneratedUniverse gen = GenerateUniverse(SmallGen(23)).ValueOrDie();
  std::vector<std::string> names;
  for (uint32_t sid = 0; sid < gen.universe.size(); ++sid) {
    names.push_back(gen.universe.source(sid).name());
  }
  std::unique_ptr<SnapshotManager> manager =
      SnapshotManager::Create(gen.universe, FastConfig(), nullptr)
          .ValueOrDie();

  constexpr int kReaders = 4;
  constexpr int kRunsPerReader = 5;
  constexpr int kChurnBatches = 4;

  struct Observation {
    uint64_t epoch;
    uint64_t seed;
    std::vector<uint32_t> sources;
  };
  std::vector<std::vector<Observation>> observed(kReaders);

  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&manager, &observed, r] {
      for (int i = 0; i < kRunsPerReader; ++i) {
        SnapshotManager::Lease lease = manager->Acquire();
        RunSpec spec;
        // Seeds are shared across readers so concurrent observations of
        // the same (epoch, seed) pair exist and must agree.
        spec.seed = 100 + i;
        const MubeResult result = lease.engine().Run(spec).ValueOrDie();
        observed[r].push_back(
            Observation{lease.epoch(), *spec.seed, result.solution.sources});
      }
    });
  }
  std::thread writer([&manager, &names] {
    for (int b = 0; b < kChurnBatches; ++b) {
      const std::vector<ChurnEvent> batch = {
          ChurnEvent::UpdateTuples(
              names[b], {static_cast<uint64_t>(9000 + b), 9100, 9200}),
          ChurnEvent::AddSource(MakeSource(
              "churned-" + std::to_string(b) + ".com", {"title", "price"},
              {static_cast<uint64_t>(9300 + b)})),
      };
      ASSERT_TRUE(manager->ApplyChurn(batch).ok());
    }
  });
  for (std::thread& reader : readers) reader.join();
  writer.join();

  // Quiescent: every lease dropped, so only the current epoch survives.
  EXPECT_EQ(manager->current_epoch(),
            static_cast<uint64_t>(kChurnBatches));
  EXPECT_EQ(manager->published_count(),
            static_cast<uint64_t>(kChurnBatches));
  EXPECT_EQ(manager->live_epoch_count(), 1u);

  // Determinism per epoch: identical (epoch, seed) pairs — no matter
  // which thread ran them, or what churn was in flight — selected the
  // exact same sources.
  std::map<std::pair<uint64_t, uint64_t>, std::vector<uint32_t>> canonical;
  size_t cross_checked = 0;
  for (const std::vector<Observation>& per_thread : observed) {
    ASSERT_EQ(per_thread.size(), static_cast<size_t>(kRunsPerReader));
    for (const Observation& obs : per_thread) {
      auto [it, inserted] =
          canonical.try_emplace({obs.epoch, obs.seed}, obs.sources);
      if (!inserted) {
        EXPECT_EQ(it->second, obs.sources)
            << "epoch " << obs.epoch << " seed " << obs.seed;
        ++cross_checked;
      }
    }
  }
  // Replay against the final epoch: observations recorded on it must
  // reproduce exactly.
  SnapshotManager::Lease final_lease = manager->Acquire();
  for (const auto& [key, sources] : canonical) {
    if (key.first != final_lease.epoch()) continue;
    RunSpec spec;
    spec.seed = key.second;
    EXPECT_EQ(final_lease.engine().Run(spec).ValueOrDie().solution.sources,
              sources);
  }
  // With 4 readers sharing 5 seeds, collisions are guaranteed.
  EXPECT_GT(cross_checked, 0u);
}

// ----------------------------------------------------------------- Tenant --

TEST(TenantTest, ValidatesConstraintEditsLikeSession) {
  const Universe universe = SmallUniverse();
  Tenant tenant("alice");

  EXPECT_TRUE(tenant.PinSource(universe, "alpha.com").ok());
  EXPECT_FALSE(tenant.PinSource(universe, "alpha.com").ok());  // dup
  EXPECT_FALSE(tenant.PinSource(universe, "nope.com").ok());
  EXPECT_FALSE(tenant.PinSource(universe, 99).ok());
  EXPECT_TRUE(tenant.PinSource(universe, 2).ok());
  EXPECT_EQ(tenant.pinned_sources(), (std::vector<uint32_t>{0, 2}));
  EXPECT_TRUE(tenant.UnpinSource(2).ok());
  EXPECT_FALSE(tenant.UnpinSource(2).ok());

  EXPECT_FALSE(tenant.SetTheta(1.5).ok());
  EXPECT_TRUE(tenant.SetTheta(0.4).ok());
  EXPECT_FALSE(tenant.SetMaxSources(0).ok());
  EXPECT_TRUE(tenant.SetMaxSources(3).ok());
  EXPECT_FALSE(tenant.SetOptimizer("annealing-of-doom").ok());
  EXPECT_TRUE(tenant.SetOptimizer("sls").ok());
  EXPECT_FALSE(tenant.SetWeights(3, {0.5, 0.5}).ok());       // count
  EXPECT_FALSE(tenant.SetWeights(2, {0.9, 0.9}).ok());       // sum
  EXPECT_TRUE(tenant.SetWeights(2, {0.25, 0.75}).ok());

  RunSpec spec = tenant.BuildRunSpec(universe, 77);
  EXPECT_EQ(spec.source_constraints, (std::vector<uint32_t>{0}));
  EXPECT_EQ(spec.theta, 0.4);
  EXPECT_EQ(spec.max_sources, 3u);
  EXPECT_EQ(spec.optimizer, "sls");
  EXPECT_EQ(spec.weights, (std::vector<double>{0.25, 0.75}));
  EXPECT_EQ(spec.seed, 77u);
}

TEST(TenantTest, StalePinsAndGasAreShedAtSpecBuildTime) {
  DeltaUniverse catalog(SmallUniverse());
  Tenant tenant("bob");
  ASSERT_TRUE(tenant.PinSource(catalog.universe(), "gamma.com").ok());
  ASSERT_TRUE(tenant.PinSource(catalog.universe(), "alpha.com").ok());
  GlobalAttribute ga({AttributeRef(2, 0), AttributeRef(0, 1)});
  ASSERT_TRUE(tenant.AddGaConstraint(catalog.universe(), ga).ok());

  // gamma.com (id 2) retires; the pin and the GA that references it are
  // dropped lazily at spec-build time, the alpha pin survives.
  ChurnDelta delta;
  ASSERT_TRUE(
      catalog.ApplyAll({ChurnEvent::RemoveSource("gamma.com")}, &delta)
          .ok());
  RunSpec spec = tenant.BuildRunSpec(catalog.universe(), 1);
  EXPECT_EQ(spec.source_constraints, (std::vector<uint32_t>{0}));
  EXPECT_EQ(spec.ga_constraints.gas().size(), 0u);
}

// ---------------------------------------------------------------- Service --

ServiceOptions SmallServiceOptions() {
  ServiceOptions options;
  options.queue_capacity = 64;
  options.max_batch = 4;
  options.worker_threads = 2;
  return options;
}

/// Bounded future waits: a lost fulfillment must fail the test loudly, not
/// hang the suite. 60 s dwarfs any legitimate serve time here.
template <typename FutureT>
auto BoundedWait(const FutureT& future) {
  auto response = future.WaitFor(60.0);
  if (!response.has_value()) {
    ADD_FAILURE() << "future was not fulfilled within 60 s";
    response.emplace();
    response->status = Status::DeadlineExceeded("test wait timed out");
  }
  return *std::move(response);
}

/// A successful Refine that installs `tenant`'s incumbent (Execute's
/// prerequisite).
void SeedIncumbent(MubeService* service, const std::string& tenant,
                   uint64_t seed = 5) {
  RefineRequest request;
  request.tenant = tenant;
  request.seed = seed;
  const RefineResponse response = service->Refine(request);
  ASSERT_TRUE(response.status.ok()) << response.status.ToString();
}

TEST(MubeServiceTest, RegisterRefineAndAlternatives) {
  std::unique_ptr<MubeService> service =
      MubeService::Create(SmallUniverse(), FastConfig(),
                          SmallServiceOptions())
          .ValueOrDie();

  Result<Tenant*> alice = service->RegisterTenant("alice");
  ASSERT_TRUE(alice.ok());
  EXPECT_EQ(service->RegisterTenant("alice").status().code(),
            StatusCode::kAlreadyExists);
  EXPECT_FALSE(service->RegisterTenant("").ok());
  EXPECT_EQ(service->FindTenant("alice"), alice.ValueOrDie());
  EXPECT_EQ(service->FindTenant("nobody"), nullptr);

  RefineRequest request;
  request.tenant = "nobody";
  EXPECT_EQ(service->Refine(request).status.code(), StatusCode::kNotFound);

  request.tenant = "alice";
  request.seed = 7;
  RefineResponse response = service->Refine(request);
  ASSERT_TRUE(response.status.ok()) << response.status.ToString();
  ASSERT_EQ(response.results.size(), 1u);
  EXPECT_TRUE(response.results[0].solution.feasible);
  EXPECT_EQ(response.epoch, 0u);

  // A portfolio request returns up to `alternatives` *distinct* solutions
  // (a catalog this small may collapse to fewer), best first.
  request.alternatives = 3;
  response = service->Refine(request);
  ASSERT_TRUE(response.status.ok()) << response.status.ToString();
  ASSERT_GE(response.results.size(), 1u);
  ASSERT_LE(response.results.size(), 3u);
  for (size_t i = 1; i < response.results.size(); ++i) {
    EXPECT_GE(response.results[i - 1].solution.overall,
              response.results[i].solution.overall);
  }
}

TEST(MubeServiceTest, TenantConstraintsShapeSelectionsAcrossChurn) {
  std::unique_ptr<MubeService> service =
      MubeService::Create(SmallUniverse(), FastConfig(),
                          SmallServiceOptions())
          .ValueOrDie();
  Tenant* bob = service->RegisterTenant("bob").ValueOrDie();
  {
    SnapshotManager::Lease lease = service->snapshots().Acquire();
    ASSERT_TRUE(bob->PinSource(lease.universe(), "alpha.com").ok());
    ASSERT_TRUE(bob->SetTheta(0.2).ok());
  }

  RefineRequest request;
  request.tenant = "bob";
  request.seed = 3;
  RefineResponse response = service->Refine(request);
  ASSERT_TRUE(response.status.ok()) << response.status.ToString();
  const std::vector<uint32_t>& chosen = response.results[0].solution.sources;
  EXPECT_NE(std::find(chosen.begin(), chosen.end(), 0u), chosen.end());

  // The pinned source retires. The service keeps answering: the stale pin
  // is shed at spec-build time against the new epoch.
  ASSERT_TRUE(
      service->ApplyChurn({ChurnEvent::RemoveSource("alpha.com")}).ok());
  response = service->Refine(request);
  ASSERT_TRUE(response.status.ok()) << response.status.ToString();
  EXPECT_EQ(response.epoch, 1u);
  const std::vector<uint32_t>& after = response.results[0].solution.sources;
  EXPECT_EQ(std::find(after.begin(), after.end(), 0u), after.end());
}

TEST(MubeServiceTest, FixedSeedStreamIsDeterministicPerEpoch) {
  GeneratedUniverse gen = GenerateUniverse(SmallGen(29)).ValueOrDie();
  std::unique_ptr<MubeService> service =
      MubeService::Create(gen.universe, FastConfig(), SmallServiceOptions())
          .ValueOrDie();
  ASSERT_TRUE(service->RegisterTenant("carol").ok());

  auto submit_wave = [&service]() {
    std::vector<ResponseFuture> futures;
    for (int i = 0; i < 12; ++i) {
      RefineRequest request;
      request.tenant = "carol";
      request.seed = 1 + (i % 3);  // three seeds, four submissions each
      futures.push_back(service->Submit(request).ValueOrDie());
    }
    std::map<std::pair<uint64_t, uint64_t>, std::vector<uint32_t>> by_key;
    for (int i = 0; i < 12; ++i) {
      const RefineResponse response = BoundedWait(futures[i]);
      EXPECT_TRUE(response.status.ok()) << response.status.ToString();
      const uint64_t seed = 1 + (i % 3);
      auto [it, inserted] = by_key.try_emplace(
          {response.epoch, seed}, response.results[0].solution.sources);
      if (!inserted) {
        EXPECT_EQ(it->second, response.results[0].solution.sources)
            << "epoch " << response.epoch << " seed " << seed;
      }
    }
    return by_key;
  };

  auto epoch0 = submit_wave();
  ASSERT_TRUE(service
                  ->ApplyChurn({ChurnEvent::UpdateTuples(
                      gen.universe.source(0).name(), {1, 2, 3})})
                  .ok());
  auto epoch1 = submit_wave();
  // Distinct epochs may (and here, with a re-crawled source, do) exist;
  // within each wave every repeated seed agreed — asserted above.
  EXPECT_EQ(epoch1.begin()->first.first, 1u);
  EXPECT_EQ(epoch0.begin()->first.first, 0u);
}

TEST(MubeServiceTest, AdmissionControlRejectsWhenTheQueueIsFull) {
  ServiceOptions options;
  options.queue_capacity = 1;
  options.max_batch = 1;
  options.worker_threads = 1;
  std::unique_ptr<MubeService> service =
      MubeService::Create(SmallUniverse(), FastConfig(), options)
          .ValueOrDie();
  ASSERT_TRUE(service->RegisterTenant("dave").ok());

  // Flood a single-slot queue with slow portfolio requests until one is
  // turned away. The dispatcher is busy for many milliseconds per request,
  // so a tight submit loop must eventually find the queue occupied.
  RefineRequest request;
  request.tenant = "dave";
  request.alternatives = 4;
  std::vector<ResponseFuture> accepted;
  bool rejected = false;
  for (int i = 0; i < 20'000 && !rejected; ++i) {
    request.seed = i + 1;
    Result<ResponseFuture> submitted = service->Submit(request);
    if (submitted.ok()) {
      accepted.push_back(submitted.MoveValueUnsafe());
    } else {
      EXPECT_EQ(submitted.status().code(), StatusCode::kUnavailable);
      rejected = true;
    }
  }
  EXPECT_TRUE(rejected);
  service->Drain();
  for (const ResponseFuture& future : accepted) {
    EXPECT_TRUE(future.Ready());
    EXPECT_TRUE(BoundedWait(future).status.ok());
  }
}

TEST(MubeServiceTest, StopDrainsAdmittedWorkAndRejectsNew) {
  std::unique_ptr<MubeService> service =
      MubeService::Create(SmallUniverse(), FastConfig(),
                          SmallServiceOptions())
          .ValueOrDie();
  ASSERT_TRUE(service->RegisterTenant("erin").ok());

  RefineRequest request;
  request.tenant = "erin";
  request.seed = 9;
  ResponseFuture admitted = service->Submit(request).ValueOrDie();
  service->Stop();
  service->Stop();  // idempotent

  // Work admitted before Stop() completes; work after is turned away.
  EXPECT_TRUE(admitted.Ready());
  EXPECT_TRUE(BoundedWait(admitted).status.ok());
  EXPECT_EQ(service->Submit(request).status().code(),
            StatusCode::kUnavailable);
  EXPECT_EQ(service->Refine(request).status.code(),
            StatusCode::kUnavailable);
}

/// Service-level churn/read race (the second TSan target): tenants keep
/// refining while the catalog churns; nobody blocks, nothing leaks.
TEST(MubeServiceTest, ChurnNeverBlocksInFlightRequests) {
  GeneratedUniverse gen = GenerateUniverse(SmallGen(31)).ValueOrDie();
  ServiceOptions options;
  options.queue_capacity = 128;
  options.max_batch = 8;
  options.worker_threads = 4;
  MetricsRegistry registry;
  std::unique_ptr<MubeService> service =
      MubeService::Create(gen.universe, FastConfig(), options, &registry)
          .ValueOrDie();
  for (const char* name : {"t0", "t1", "t2", "t3"}) {
    ASSERT_TRUE(service->RegisterTenant(name).ok());
  }

  std::vector<ResponseFuture> futures;
  for (int i = 0; i < 24; ++i) {
    RefineRequest request;
    request.tenant = "t" + std::to_string(i % 4);
    request.seed = i + 1;
    Result<ResponseFuture> submitted = service->Submit(request);
    ASSERT_TRUE(submitted.ok());
    futures.push_back(submitted.MoveValueUnsafe());
    if (i % 6 == 5) {
      ASSERT_TRUE(service
                      ->ApplyChurn({ChurnEvent::UpdateTuples(
                          gen.universe.source(i % 8).name(),
                          {static_cast<uint64_t>(7000 + i)})})
                      .ok());
    }
  }
  service->Drain();
  for (const ResponseFuture& future : futures) {
    const RefineResponse response = BoundedWait(future);
    EXPECT_TRUE(response.status.ok()) << response.status.ToString();
    EXPECT_LE(response.epoch, 4u);
  }
  // Quiescent after the drain: every batch lease dropped, superseded
  // epochs reclaimed.
  EXPECT_EQ(service->snapshots().live_epoch_count(), 1u);
  EXPECT_EQ(service->snapshots().published_count(), 4u);

  // The unified registry saw the serving layer AND the engine hot paths.
  EXPECT_GE(registry.GetCounter("serving_requests_total")->Value(), 24u);
  EXPECT_EQ(registry.GetCounter("serving_epochs_published_total")->Value(),
            4u);
  EXPECT_GT(registry.GetCounter("serving_batches_total")->Value(), 0u);
  EXPECT_GE(registry.GetCounter("mube_runs_total")->Value(), 24u);
  EXPECT_GT(registry.GetCounter("mube_optimizer_evaluations_total")->Value(),
            0u);
  EXPECT_GT(registry.GetCounter("mube_match_calls_total")->Value(), 0u);
  EXPECT_GT(registry.GetCounter("mube_match_memo_misses_total")->Value(),
            0u);
  EXPECT_GT(registry.GetCounter("mube_union_memo_misses_total")->Value(),
            0u);
  EXPECT_GT(registry.GetCounter("mube_measure_calls_total")->Value(), 0u);
  EXPECT_EQ(registry.GetCounter("mube_churn_batches_total")->Value(), 4u);

  const std::string text = registry.Expose();
  EXPECT_NE(text.find("# TYPE mube_run_seconds histogram"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE serving_request_run_seconds histogram"),
            std::string::npos);
  EXPECT_NE(text.find("serving_staleness_epochs_bucket"),
            std::string::npos);
}

// ------------------------------------------------- Resilient Execute path --

TEST(MubeServiceTest, ExecuteRunsTheIncumbentSelectionResiliently) {
  MetricsRegistry registry;
  std::unique_ptr<MubeService> service =
      MubeService::Create(SmallUniverse(), FastConfig(),
                          SmallServiceOptions(), &registry)
          .ValueOrDie();
  ASSERT_TRUE(service->RegisterTenant("alice").ok());

  ExecuteRequest request;
  request.tenant = "nobody";
  EXPECT_EQ(service->Execute(request).status.code(), StatusCode::kNotFound);

  // Execute needs a selection to run: before any successful Refine there is
  // no incumbent, and the response says so instead of guessing one.
  request.tenant = "alice";
  EXPECT_EQ(service->Execute(request).status.code(),
            StatusCode::kFailedPrecondition);

  SeedIncumbent(service.get(), "alice");
  const ExecuteResponse response = service->Execute(request);
  ASSERT_TRUE(response.status.ok()) << response.status.ToString();
  EXPECT_FALSE(response.degraded);
  EXPECT_EQ(response.report.outcome, QueryOutcome::kAnswered);
  EXPECT_GE(response.report.sources_succeeded, 1u);
  EXPECT_FALSE(response.report.result.records.empty());
  EXPECT_GT(response.dispatch_sequence, 0u);

  const Tenant* alice = service->FindTenant("alice");
  EXPECT_EQ(alice->serving_stats().executes, 1u);
  EXPECT_EQ(registry.GetCounter("serving_executes_total")->Value(), 1u);
  // A healthy run is cached for future degraded serves.
  EXPECT_TRUE(alice->cached_report().has_value());
}

TEST(MubeServiceTest, QueueExpiredDeadlinesAreShedBeforeDispatch) {
  std::atomic<double> clock{0.0};
  MetricsRegistry registry;
  ServiceOptions options = SmallServiceOptions();
  options.clock_ms = [&clock] { return clock.load(); };
  std::unique_ptr<MubeService> service =
      MubeService::Create(SmallUniverse(), FastConfig(), options, &registry)
          .ValueOrDie();
  ASSERT_TRUE(service->RegisterTenant("alice").ok());
  SeedIncumbent(service.get(), "alice");

  // Stage a wave behind a paused dispatcher, expire it on the manual
  // clock, then release: everything must shed with kDeadlineExceeded and
  // nothing may reach an engine.
  service->PauseDispatch();
  RefineRequest refine;
  refine.tenant = "alice";
  refine.deadline_ms = 100.0;
  ResponseFuture refine_future = service->Submit(refine).ValueOrDie();
  ExecuteRequest execute;
  execute.tenant = "alice";
  execute.deadline_ms = 80.0;
  ExecuteFuture execute_future =
      service->SubmitExecute(execute).ValueOrDie();
  clock.store(150.0);
  service->ResumeDispatch();
  service->Drain();

  const RefineResponse refined = BoundedWait(refine_future);
  EXPECT_EQ(refined.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(refined.dispatch_sequence, 0u);  // never dispatched
  const ExecuteResponse executed = BoundedWait(execute_future);
  EXPECT_EQ(executed.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(executed.dispatch_sequence, 0u);

  EXPECT_EQ(
      registry.GetCounter("serving_deadline_expired_in_queue_total")->Value(),
      2u);
  EXPECT_EQ(
      registry.GetCounter("serving_post_deadline_dispatch_total")->Value(),
      0u);
  EXPECT_EQ(service->FindTenant("alice")->serving_stats().shed_deadline, 2u);
}

TEST(MubeServiceTest, TightBudgetDegradesToTheCachedAnswerStaleMarked) {
  std::atomic<double> clock{0.0};
  MetricsRegistry registry;
  ServiceOptions options = SmallServiceOptions();
  options.clock_ms = [&clock] { return clock.load(); };
  options.degrade_threshold_ms = 50.0;
  std::unique_ptr<MubeService> service =
      MubeService::Create(SmallUniverse(), FastConfig(), options, &registry)
          .ValueOrDie();
  ASSERT_TRUE(service->RegisterTenant("alice").ok());
  SeedIncumbent(service.get(), "alice");
  ExecuteRequest execute;
  execute.tenant = "alice";
  ASSERT_TRUE(service->Execute(execute).status.ok());  // caches a report

  // Remaining budget at serve time is 100 - 70 = 30 ms < the 50 ms degrade
  // threshold: still alive (not shed), but too tight for a fresh run.
  service->PauseDispatch();
  RefineRequest refine;
  refine.tenant = "alice";
  refine.seed = 99;
  refine.deadline_ms = 100.0;
  ResponseFuture refine_future = service->Submit(refine).ValueOrDie();
  execute.deadline_ms = 100.0;
  ExecuteFuture execute_future =
      service->SubmitExecute(execute).ValueOrDie();
  clock.store(70.0);
  service->ResumeDispatch();
  service->Drain();

  const RefineResponse refined = BoundedWait(refine_future);
  ASSERT_TRUE(refined.status.ok()) << refined.status.ToString();
  EXPECT_TRUE(refined.degraded);
  ASSERT_EQ(refined.results.size(), 1u);
  EXPECT_TRUE(refined.results[0].solution.feasible);
  const ExecuteResponse executed = BoundedWait(execute_future);
  ASSERT_TRUE(executed.status.ok()) << executed.status.ToString();
  EXPECT_TRUE(executed.degraded);
  EXPECT_EQ(executed.report.outcome, QueryOutcome::kAnswered);

  EXPECT_EQ(registry.GetCounter("serving_degraded_serves_total")->Value(),
            2u);
  EXPECT_EQ(
      registry.GetCounter("serving_post_deadline_dispatch_total")->Value(),
      0u);
  EXPECT_EQ(service->FindTenant("alice")->serving_stats().degraded, 2u);
}

TEST(MubeServiceTest, TenantQuotaRejectsDistinctlyFromGlobalOverload) {
  ServiceOptions options;
  options.queue_capacity = 4;
  options.max_batch = 4;
  options.worker_threads = 1;
  options.per_tenant_quota = 2;
  MetricsRegistry registry;
  std::unique_ptr<MubeService> service =
      MubeService::Create(SmallUniverse(), FastConfig(), options, &registry)
          .ValueOrDie();
  ASSERT_TRUE(service->RegisterTenant("greedy").ok());
  ASSERT_TRUE(service->RegisterTenant("modest").ok());

  service->PauseDispatch();
  RefineRequest request;
  request.tenant = "greedy";
  std::vector<ResponseFuture> accepted;
  accepted.push_back(service->Submit(request).ValueOrDie());
  accepted.push_back(service->Submit(request).ValueOrDie());
  // Third submit breaches greedy's quota: kResourceExhausted (my share is
  // full) with a retry-after hint, NOT kUnavailable (the service is full).
  Result<ResponseFuture> over_quota = service->Submit(request);
  ASSERT_FALSE(over_quota.ok());
  EXPECT_EQ(over_quota.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(over_quota.status().message().find("retry after"),
            std::string::npos);

  // Another tenant still gets in — the queue has global room.
  request.tenant = "modest";
  accepted.push_back(service->Submit(request).ValueOrDie());
  accepted.push_back(service->Submit(request).ValueOrDie());
  // Now the *global* capacity (4) is exhausted: a third tenant's first
  // request is turned away with kUnavailable before any quota check.
  ASSERT_TRUE(service->RegisterTenant("late").ok());
  request.tenant = "late";
  Result<ResponseFuture> overloaded = service->Submit(request);
  ASSERT_FALSE(overloaded.ok());
  EXPECT_EQ(overloaded.status().code(), StatusCode::kUnavailable);

  service->ResumeDispatch();
  service->Drain();
  for (const ResponseFuture& future : accepted) {
    EXPECT_TRUE(BoundedWait(future).status.ok());
  }
  EXPECT_EQ(registry.GetCounter("serving_quota_rejected_total")->Value(),
            1u);
  EXPECT_EQ(service->FindTenant("greedy")->serving_stats().rejected_quota,
            1u);
  EXPECT_EQ(service->FindTenant("modest")->serving_stats().rejected_quota,
            0u);
}

TEST(MubeServiceTest, WeightedFairDispatchBoundsStarvation) {
  ServiceOptions options;
  options.queue_capacity = 64;
  options.max_batch = 16;
  options.worker_threads = 2;
  std::unique_ptr<MubeService> service =
      MubeService::Create(SmallUniverse(), FastConfig(), options)
          .ValueOrDie();
  Tenant* heavy = service->RegisterTenant("heavy").ValueOrDie();
  ASSERT_TRUE(service->RegisterTenant("light").ok());
  ASSERT_TRUE(heavy->SetDispatchWeight(2).ok());
  EXPECT_FALSE(heavy->SetDispatchWeight(0).ok());

  // heavy floods 8 requests before light submits 2. Round-robin with
  // weights {heavy: 2, light: 1} must interleave light at every third
  // dispatch slot — light's i-th request dispatches within i * (2 + 1)
  // slots no matter how deep heavy's backlog is.
  service->PauseDispatch();
  RefineRequest request;
  request.tenant = "heavy";
  std::vector<ResponseFuture> heavy_futures;
  for (int i = 0; i < 8; ++i) {
    request.seed = i + 1;
    heavy_futures.push_back(service->Submit(request).ValueOrDie());
  }
  request.tenant = "light";
  std::vector<ResponseFuture> light_futures;
  for (int i = 0; i < 2; ++i) {
    request.seed = 100 + i;
    light_futures.push_back(service->Submit(request).ValueOrDie());
  }
  service->ResumeDispatch();
  service->Drain();

  constexpr uint64_t kCycle = 2 + 1;  // sum of dispatch weights
  for (size_t i = 0; i < light_futures.size(); ++i) {
    const RefineResponse response = BoundedWait(light_futures[i]);
    ASSERT_TRUE(response.status.ok()) << response.status.ToString();
    EXPECT_LE(response.dispatch_sequence, (i + 1) * kCycle)
        << "light request " << i << " starved past its fair-share bound";
  }
  for (const ResponseFuture& future : heavy_futures) {
    EXPECT_TRUE(BoundedWait(future).status.ok());
  }
}

TEST(MubeServiceTest, BreakerStateSurvivesEpochPublishes) {
  FaultInjector faults(7);
  FaultProfile down;
  down.hard_down = true;
  faults.SetProfile(0, down);  // alpha.com never answers

  ServiceOptions options = SmallServiceOptions();
  options.fault_injector = &faults;
  options.reliability.breaker.min_samples = 2;
  options.reliability.breaker.failure_threshold = 0.5;
  options.reliability.breaker.open_cooldown_ms = 1e9;  // effectively forever
  options.reliability.persistent_failure_threshold = 100;  // isolate breakers
  MetricsRegistry registry;
  std::unique_ptr<MubeService> service =
      MubeService::Create(SmallUniverse(), FastConfig(), options, &registry)
          .ValueOrDie();
  Tenant* alice = service->RegisterTenant("alice").ValueOrDie();
  {
    SnapshotManager::Lease lease = service->snapshots().Acquire();
    ASSERT_TRUE(alice->PinSource(lease.universe(), "alpha.com").ok());
  }
  SeedIncumbent(service.get(), "alice");

  auto scan_status_of = [](const ExecuteResponse& response, uint32_t sid) {
    for (const SourceScanLog& log : response.report.scans) {
      if (log.source_id == sid) return log.status;
    }
    return ScanStatus::kSkippedCannotAnswer;
  };

  // Two hard failures trip the breaker (min_samples = 2, rate 1.0)...
  ExecuteRequest request;
  request.tenant = "alice";
  for (int i = 0; i < 2; ++i) {
    const ExecuteResponse response = service->Execute(request);
    ASSERT_TRUE(response.status.ok()) << response.status.ToString();
    EXPECT_EQ(scan_status_of(response, 0), ScanStatus::kFailed);
  }
  // ...an epoch publishes (unrelated churn)...
  ASSERT_TRUE(service
                  ->ApplyChurn({ChurnEvent::UpdateTuples("beta.com",
                                                         {3, 4, 5, 99})})
                  .ok());
  // ...and the open breaker still short-circuits on the NEW epoch: breaker
  // state lives in the service's registry, not in any epoch's executor.
  const ExecuteResponse after = service->Execute(request);
  ASSERT_TRUE(after.status.ok()) << after.status.ToString();
  EXPECT_EQ(after.epoch, 1u);
  EXPECT_EQ(scan_status_of(after, 0), ScanStatus::kShortCircuited);
  EXPECT_EQ(after.report.breaker_short_circuits, 1u);

  service->Drain();
  EXPECT_EQ(service->breaker_registry().TotalTransitions().opens, 1u);
  EXPECT_EQ(registry.GetCounter("serving_breaker_opens_total")->Value(), 1u);
}

TEST(MubeServiceTest, PersistentExecuteFailuresChurnTheCatalog) {
  FaultInjector faults(11);
  FaultProfile down;
  down.hard_down = true;
  faults.SetProfile(0, down);  // alpha.com never answers

  ServiceOptions options = SmallServiceOptions();
  options.fault_injector = &faults;
  options.reliability.persistent_failure_threshold = 2;
  MetricsRegistry registry;
  std::unique_ptr<MubeService> service =
      MubeService::Create(SmallUniverse(), FastConfig(), options, &registry)
          .ValueOrDie();
  Tenant* alice = service->RegisterTenant("alice").ValueOrDie();
  {
    SnapshotManager::Lease lease = service->snapshots().Acquire();
    ASSERT_TRUE(alice->PinSource(lease.universe(), "alpha.com").ok());
  }
  SeedIncumbent(service.get(), "alice");

  // Two Executes push alpha.com's failure streak to the threshold; the
  // service then routes the drained churn through its own epoch store —
  // a source that never answered is removed outright.
  ExecuteRequest request;
  request.tenant = "alice";
  ASSERT_TRUE(service->Execute(request).status.ok());
  EXPECT_EQ(service->snapshots().published_count(), 0u);
  ASSERT_TRUE(service->Execute(request).status.ok());
  service->Drain();

  EXPECT_EQ(service->snapshots().published_count(), 1u);
  EXPECT_EQ(
      registry.GetCounter("serving_persistent_failure_churn_total")->Value(),
      1u);
  SnapshotManager::Lease lease = service->snapshots().Acquire();
  EXPECT_EQ(lease.epoch(), 1u);
  EXPECT_FALSE(lease.universe().alive(0));

  // The tenant keeps being served: the stale pin and the incumbent's dead
  // member are shed, and the next Execute runs the survivors.
  const ExecuteResponse after = service->Execute(request);
  ASSERT_TRUE(after.status.ok()) << after.status.ToString();
  for (const SourceScanLog& log : after.report.scans) {
    EXPECT_NE(log.source_id, 0u);
  }
}

/// TSan target: Drain and Stop racing a mixed in-flight Refine/Execute
/// stream plus churn. The only invariant that matters under the race is
/// that every admitted future is fulfilled — no leaks, no hangs.
TEST(MubeServiceTest, DrainAndStopRaceInFlightExecutes) {
  GeneratedUniverse gen = GenerateUniverse(SmallGen(37)).ValueOrDie();
  ServiceOptions options;
  options.queue_capacity = 128;
  options.max_batch = 8;
  options.worker_threads = 4;
  std::unique_ptr<MubeService> service =
      MubeService::Create(gen.universe, FastConfig(), options).ValueOrDie();
  for (const char* name : {"t0", "t1"}) {
    ASSERT_TRUE(service->RegisterTenant(name).ok());
    SeedIncumbent(service.get(), name);
  }

  Mutex mu;
  std::vector<ResponseFuture> refines;
  std::vector<ExecuteFuture> executes;
  std::vector<std::thread> submitters;
  for (int t = 0; t < 2; ++t) {
    submitters.emplace_back([&service, &mu, &refines, &executes, t] {
      const std::string tenant = "t" + std::to_string(t);
      for (int i = 0; i < 12; ++i) {
        if (i % 3 == 2) {
          ExecuteRequest request;
          request.tenant = tenant;
          Result<ExecuteFuture> submitted =
              service->SubmitExecute(std::move(request));
          if (submitted.ok()) {
            MutexLock lock(&mu);
            executes.push_back(submitted.MoveValueUnsafe());
          }
        } else {
          RefineRequest request;
          request.tenant = tenant;
          request.seed = i + 1;
          Result<ResponseFuture> submitted = service->Submit(request);
          if (submitted.ok()) {
            MutexLock lock(&mu);
            refines.push_back(submitted.MoveValueUnsafe());
          }
        }
      }
    });
  }
  std::thread churner([&service, &gen] {
    for (int b = 0; b < 3; ++b) {
      ASSERT_TRUE(service
                      ->ApplyChurn({ChurnEvent::UpdateTuples(
                          gen.universe.source(b).name(),
                          {static_cast<uint64_t>(8000 + b)})})
                      .ok());
    }
  });
  service->Drain();  // races the submitters: may return while they submit
  for (std::thread& submitter : submitters) submitter.join();
  churner.join();
  service->Stop();  // drains whatever was admitted after the Drain

  for (const ResponseFuture& future : refines) {
    EXPECT_TRUE(future.Ready());
    const RefineResponse response = BoundedWait(future);
    EXPECT_TRUE(response.status.ok()) << response.status.ToString();
  }
  for (const ExecuteFuture& future : executes) {
    EXPECT_TRUE(future.Ready());
    const ExecuteResponse response = BoundedWait(future);
    EXPECT_TRUE(response.status.ok()) << response.status.ToString();
  }
}

/// TSan target: an adversarial flooder pinned to its quota must not starve
/// or quota-poison a polite tenant submitting one request at a time.
TEST(MubeServiceTest, QuotaShieldsPoliteTenantsFromAdversarialFloods) {
  ServiceOptions options;
  options.queue_capacity = 64;
  options.max_batch = 4;
  options.worker_threads = 2;
  options.per_tenant_quota = 4;
  std::unique_ptr<MubeService> service =
      MubeService::Create(SmallUniverse(), FastConfig(), options)
          .ValueOrDie();
  ASSERT_TRUE(service->RegisterTenant("adversary").ok());
  ASSERT_TRUE(service->RegisterTenant("polite").ok());

  std::atomic<int> adversary_quota_rejections{0};
  std::thread adversary([&service, &adversary_quota_rejections] {
    std::vector<ResponseFuture> futures;
    for (int i = 0; i < 120; ++i) {
      RefineRequest request;
      request.tenant = "adversary";
      request.seed = i + 1;
      Result<ResponseFuture> submitted = service->Submit(request);
      if (submitted.ok()) {
        futures.push_back(submitted.MoveValueUnsafe());
      } else if (submitted.status().IsResourceExhausted()) {
        ++adversary_quota_rejections;
      }
    }
    for (const ResponseFuture& future : futures) {
      EXPECT_TRUE(BoundedWait(future).status.ok());
    }
  });
  std::thread polite([&service] {
    for (int i = 0; i < 8; ++i) {
      RefineRequest request;
      request.tenant = "polite";
      request.seed = 1000 + i;
      // One request in flight at a time: the definition of polite. Under a
      // per-tenant quota the adversary's flood cannot make these fail.
      const RefineResponse response = service->Refine(request);
      EXPECT_TRUE(response.status.ok()) << response.status.ToString();
    }
  });
  adversary.join();
  polite.join();
  service->Drain();

  // The flood really was clamped by the quota, and none of the clamping
  // leaked onto the polite tenant.
  EXPECT_GT(adversary_quota_rejections.load(), 0);
  EXPECT_EQ(service->FindTenant("polite")->serving_stats().rejected_quota,
            0u);
  EXPECT_EQ(service->FindTenant("polite")->serving_stats().served_ok, 8u);
}

}  // namespace
}  // namespace mube
