// Tests for src/qef: the QefSet weight machinery, the data QEFs
// (Card/Coverage/Redundancy) against analytically known overlaps, the
// characteristic QEFs and aggregators, and the memoizing match QEF.

#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "match/matcher.h"
#include "qef/characteristic_qef.h"
#include "qef/data_qefs.h"
#include "qef/health_qef.h"
#include "qef/match_qef.h"
#include "qef/qef.h"
#include "schema/universe.h"
#include "sketch/signature_cache.h"
#include "text/similarity.h"
#include "text/similarity_matrix.h"

namespace mube {
namespace {

/// A QEF returning a constant, for weight-sum tests.
class ConstantQef : public Qef {
 public:
  explicit ConstantQef(double value) : value_(value) {}
  double Evaluate(const std::vector<uint32_t>&) const override {
    return value_;
  }
  std::string name() const override { return "const"; }

 private:
  double value_;
};

// ------------------------------------------------------------------ QefSet --

TEST(QefSetTest, AddValidatesWeightRange) {
  QefSet set;
  EXPECT_TRUE(set.Add(std::make_unique<ConstantQef>(1.0), 0.5).ok());
  EXPECT_FALSE(set.Add(std::make_unique<ConstantQef>(1.0), 1.5).ok());
  EXPECT_FALSE(set.Add(std::make_unique<ConstantQef>(1.0), -0.1).ok());
  EXPECT_FALSE(set.Add(nullptr, 0.5).ok());
}

TEST(QefSetTest, ValidateWeightsRequiresSumOne) {
  QefSet set;
  ASSERT_TRUE(set.Add(std::make_unique<ConstantQef>(1.0), 0.5).ok());
  ASSERT_TRUE(set.Add(std::make_unique<ConstantQef>(1.0), 0.3).ok());
  EXPECT_FALSE(set.ValidateWeights().ok());
  ASSERT_TRUE(set.Add(std::make_unique<ConstantQef>(1.0), 0.2).ok());
  EXPECT_TRUE(set.ValidateWeights().ok());
}

TEST(QefSetTest, OverallQualityIsWeightedSum) {
  QefSet set;
  ASSERT_TRUE(set.Add(std::make_unique<ConstantQef>(1.0), 0.25).ok());
  ASSERT_TRUE(set.Add(std::make_unique<ConstantQef>(0.5), 0.75).ok());
  EXPECT_NEAR(set.OverallQuality({0}), 0.25 * 1.0 + 0.75 * 0.5, 1e-12);
}

TEST(QefSetTest, SetWeightsReplacesAndValidates) {
  QefSet set;
  ASSERT_TRUE(set.Add(std::make_unique<ConstantQef>(1.0), 0.5).ok());
  ASSERT_TRUE(set.Add(std::make_unique<ConstantQef>(0.0), 0.5).ok());
  EXPECT_FALSE(set.SetWeights({0.3}).ok());          // wrong count
  EXPECT_FALSE(set.SetWeights({0.3, 1.4}).ok());     // out of range
  EXPECT_TRUE(set.SetWeights({0.9, 0.1}).ok());
  EXPECT_NEAR(set.OverallQuality({}), 0.9, 1e-12);
}

TEST(QefSetTest, NormalizeWeights) {
  QefSet set;
  ASSERT_TRUE(set.Add(std::make_unique<ConstantQef>(1.0), 0.5).ok());
  ASSERT_TRUE(set.Add(std::make_unique<ConstantQef>(1.0), 0.25).ok());
  ASSERT_TRUE(set.NormalizeWeights().ok());
  EXPECT_TRUE(set.ValidateWeights().ok());
  EXPECT_NEAR(set.weight(0), 2.0 / 3.0, 1e-12);
}

TEST(QefSetTest, FindByName) {
  QefSet set;
  ASSERT_TRUE(set.Add(std::make_unique<ConstantQef>(1.0), 1.0).ok());
  EXPECT_EQ(set.FindByName("const"), 0);
  EXPECT_EQ(set.FindByName("missing"), -1);
}

// ------------------------------------------------------------- data QEFs --

/// Universe with analytically known overlap structure:
///   s0: tuples [0, 40k)          |s0| = 40k
///   s1: tuples [20k, 60k)        |s1| = 40k, |s0 ∪ s1| = 60k
///   s2: tuples [0, 20k)          |s2| = 20k, subset of s0
///   s3: uncooperative, |s3| = 50k (reported)
Universe DataUniverse() {
  auto range = [](uint64_t lo, uint64_t hi) {
    std::vector<uint64_t> t;
    t.reserve(hi - lo);
    for (uint64_t i = lo; i < hi; ++i) t.push_back(i);
    return t;
  };
  Universe u;
  for (int i = 0; i < 4; ++i) {
    Source s(0, "s" + std::to_string(i));
    s.AddAttribute(Attribute("x"));
    u.AddSource(std::move(s));
  }
  u.mutable_source(0).SetTuples(range(0, 40'000));
  u.mutable_source(1).SetTuples(range(20'000, 60'000));
  u.mutable_source(2).SetTuples(range(0, 20'000));
  u.mutable_source(3).set_cardinality(50'000);
  u.RefreshStatistics();
  return u;
}

TEST(CardQefTest, FractionOfUniverseTotal) {
  Universe u = DataUniverse();
  CardQef card(u);
  // Total = 40k + 40k + 20k + 50k = 150k.
  EXPECT_NEAR(card.Evaluate({0}), 40'000.0 / 150'000.0, 1e-12);
  EXPECT_NEAR(card.Evaluate({0, 1, 2, 3}), 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(card.Evaluate({}), 0.0);
  EXPECT_EQ(card.RawCardinality({1, 3}), 90'000u);
}

TEST(CoverageQefTest, TracksDistinctUnion) {
  Universe u = DataUniverse();
  SignatureCache cache(u, PcsaConfig());
  CoverageQef coverage(u, cache);
  // Universe distinct = 60k (s3 contributes nothing — no signature).
  // s0 alone covers 40k/60k ≈ 0.667.
  EXPECT_NEAR(coverage.Evaluate({0}), 2.0 / 3.0, 0.12);
  EXPECT_NEAR(coverage.Evaluate({0, 1}), 1.0, 0.05);
  // s2 ⊂ s0: adding it must not increase coverage.
  EXPECT_NEAR(coverage.Evaluate({0, 2}), coverage.Evaluate({0}), 1e-9);
  EXPECT_DOUBLE_EQ(coverage.Evaluate({}), 0.0);
  // Range contract.
  EXPECT_LE(coverage.Evaluate({0, 1, 2, 3}), 1.0);
}

TEST(RedundancyQefTest, OneIsNoOverlapZeroIsTotal) {
  Universe u = DataUniverse();
  // Redundancy amplifies sketch error by k/(k-1); use a high-resolution
  // sketch (standard error ≈ 0.78/√4096 ≈ 1.2%) so the analytic values are
  // testable.
  PcsaConfig config;
  config.num_maps = 4096;
  SignatureCache cache(u, config);
  RedundancyQef redundancy(u, cache);

  // s0 and s2: s2 fully inside s0 -> heavy overlap.
  // ratio = 40k/60k = 2/3, k = 2 -> (2*(2/3)-1)/1 = 1/3.
  EXPECT_NEAR(redundancy.Evaluate({0, 2}), 1.0 / 3.0, 0.1);
  // s0 and s1 overlap half: ratio = 60k/80k = 0.75 -> (1.5-1)/1 = 0.5.
  EXPECT_NEAR(redundancy.Evaluate({0, 1}), 0.5, 0.1);
  // Single source: perfect (nothing to overlap with).
  EXPECT_DOUBLE_EQ(redundancy.Evaluate({0}), 1.0);
  // Only uncooperative: 0 per the paper's fallback.
  EXPECT_DOUBLE_EQ(redundancy.Evaluate({3}), 0.0);
  // Uncooperative sources are excluded, not penalized.
  EXPECT_NEAR(redundancy.Evaluate({0, 1, 3}), redundancy.Evaluate({0, 1}),
              1e-9);
}

TEST(RedundancyQefTest, DisjointSourcesScoreNearOne) {
  auto range = [](uint64_t lo, uint64_t hi) {
    std::vector<uint64_t> t;
    for (uint64_t i = lo; i < hi; ++i) t.push_back(i);
    return t;
  };
  Universe u;
  for (int i = 0; i < 3; ++i) {
    Source s(0, "d" + std::to_string(i));
    s.AddAttribute(Attribute("x"));
    u.AddSource(std::move(s));
  }
  u.mutable_source(0).SetTuples(range(0, 30'000));
  u.mutable_source(1).SetTuples(range(30'000, 60'000));
  u.mutable_source(2).SetTuples(range(60'000, 90'000));
  u.RefreshStatistics();
  SignatureCache cache(u, PcsaConfig());
  RedundancyQef redundancy(u, cache);
  EXPECT_GT(redundancy.Evaluate({0, 1, 2}), 0.85);
}

// ---------------------------------------------------- characteristic QEFs --

Universe CharacteristicUniverse() {
  Universe u;
  const double mttf[] = {50.0, 100.0, 150.0};
  const uint64_t card[] = {1000, 1000, 2000};
  for (int i = 0; i < 3; ++i) {
    Source s(0, "c" + std::to_string(i));
    s.AddAttribute(Attribute("x"));
    s.set_cardinality(card[i]);
    s.characteristics().Set("mttf", mttf[i]);
    u.AddSource(std::move(s));
  }
  // A source that does not report mttf.
  Source s(0, "mute");
  s.AddAttribute(Attribute("x"));
  s.set_cardinality(500);
  u.AddSource(std::move(s));
  return u;
}

TEST(AggregatorTest, WeightedSumMatchesPaperFormula) {
  Universe u = CharacteristicUniverse();
  WeightedSumAggregator wsum;
  // S = {0, 2}: min_U = 50, max_U = 150.
  // ((50-50)*1000 + (150-50)*2000) / ((1000+2000) * (150-50)) = 2/3.
  EXPECT_NEAR(wsum.Aggregate(u, {0, 2}, "mttf"), 2.0 / 3.0, 1e-12);
  // Best source only: normalized value 1.
  EXPECT_NEAR(wsum.Aggregate(u, {2}, "mttf"), 1.0, 1e-12);
  // Worst source only: 0.
  EXPECT_NEAR(wsum.Aggregate(u, {0}, "mttf"), 0.0, 1e-12);
  EXPECT_DOUBLE_EQ(wsum.Aggregate(u, {}, "mttf"), 0.0);
}

TEST(AggregatorTest, MissingCharacteristicTreatedAsMinimum) {
  Universe u = CharacteristicUniverse();
  WeightedSumAggregator wsum;
  // The mute source contributes cardinality but zero value.
  const double with_mute = wsum.Aggregate(u, {2, 3}, "mttf");
  const double without = wsum.Aggregate(u, {2}, "mttf");
  EXPECT_LT(with_mute, without);
}

TEST(AggregatorTest, UnknownCharacteristicScoresZero) {
  Universe u = CharacteristicUniverse();
  WeightedSumAggregator wsum;
  EXPECT_DOUBLE_EQ(wsum.Aggregate(u, {0, 1}, "fee"), 0.0);
}

TEST(AggregatorTest, MeanMinMax) {
  Universe u = CharacteristicUniverse();
  MeanAggregator mean;
  MinAggregator min_agg;
  MaxAggregator max_agg;
  // Normalized values: s0 = 0, s1 = 0.5, s2 = 1.
  EXPECT_NEAR(mean.Aggregate(u, {0, 1, 2}, "mttf"), 0.5, 1e-12);
  EXPECT_NEAR(min_agg.Aggregate(u, {1, 2}, "mttf"), 0.5, 1e-12);
  EXPECT_NEAR(max_agg.Aggregate(u, {0, 1}, "mttf"), 0.5, 1e-12);
}

TEST(AggregatorTest, Factory) {
  EXPECT_TRUE(MakeAggregator("wsum").ok());
  EXPECT_TRUE(MakeAggregator("mean").ok());
  EXPECT_TRUE(MakeAggregator("min").ok());
  EXPECT_TRUE(MakeAggregator("max").ok());
  EXPECT_FALSE(MakeAggregator("median").ok());
}

TEST(CharacteristicQefTest, InvertFlipsOrientation) {
  Universe u = CharacteristicUniverse();
  CharacteristicQef straight(u, "mttf",
                             std::make_unique<WeightedSumAggregator>(),
                             /*invert=*/false);
  CharacteristicQef inverted(u, "mttf",
                             std::make_unique<WeightedSumAggregator>(),
                             /*invert=*/true);
  EXPECT_NEAR(straight.Evaluate({2}) + inverted.Evaluate({2}), 1.0, 1e-12);
  EXPECT_EQ(straight.name(), "mttf:wsum");
  EXPECT_EQ(inverted.name(), "mttf:wsum:inverted");
}

// ------------------------------------------------------------- health QEF --

TEST(SourceHealthQefTest, MeanOverSubsetWithHealthyDefault) {
  SourceHealthQef qef({{0, 0.5}, {1, 0.0}, {2, 1.5}, {3, -0.25}});
  EXPECT_EQ(qef.name(), "health");
  EXPECT_DOUBLE_EQ(qef.Evaluate({0}), 0.5);
  EXPECT_DOUBLE_EQ(qef.Evaluate({1}), 0.0);
  EXPECT_DOUBLE_EQ(qef.Evaluate({2}), 1.0);   // clamped from above
  EXPECT_DOUBLE_EQ(qef.Evaluate({3}), 0.0);   // clamped from below
  EXPECT_DOUBLE_EQ(qef.Evaluate({9}), 1.0);   // unobserved: healthy
  EXPECT_DOUBLE_EQ(qef.Evaluate({0, 1, 9, 42}), (0.5 + 0.0 + 1.0 + 1.0) / 4);
  EXPECT_DOUBLE_EQ(qef.Evaluate({}), 0.0);
}

// -------------------------------------------------------------- match QEF --

TEST(MatchQefTest, MemoizesAndMatchesDirectCalls) {
  Universe u;
  for (int i = 0; i < 3; ++i) {
    Source s(0, "m" + std::to_string(i));
    s.AddAttribute(Attribute("title"));
    u.AddSource(std::move(s));
  }
  NGramJaccard measure(3);
  SimilarityMatrix matrix(u, measure);
  Matcher matcher(u, matrix);

  MatchOptions options;
  options.theta = 0.75;
  MatchQualityQef qef(matcher, options, {}, MediatedSchema());

  EXPECT_EQ(qef.cache_size(), 0u);
  const double q1 = qef.Evaluate({0, 1});
  EXPECT_EQ(qef.cache_size(), 1u);
  const double q2 = qef.Evaluate({1, 0});  // same subset, different order
  EXPECT_EQ(qef.cache_size(), 1u);
  EXPECT_DOUBLE_EQ(q1, q2);
  EXPECT_DOUBLE_EQ(q1, 1.0);

  const MatchResult& full = qef.MatchFor({0, 1, 2});
  EXPECT_EQ(qef.cache_size(), 2u);
  EXPECT_TRUE(full.feasible);
  EXPECT_EQ(full.schema.size(), 1u);
}

TEST(MatchQefTest, InfeasibleSubsetsScoreZero) {
  Universe u;
  {
    Source s(0, "a");
    s.AddAttribute(Attribute("alpha"));
    u.AddSource(std::move(s));
  }
  {
    Source s(0, "b");
    s.AddAttribute(Attribute("omega"));
    u.AddSource(std::move(s));
  }
  NGramJaccard measure(3);
  SimilarityMatrix matrix(u, measure);
  Matcher matcher(u, matrix);
  MatchOptions options;
  options.theta = 0.75;
  // Constraint on source 0, which nothing matches -> infeasible.
  MatchQualityQef qef(matcher, options, {0}, MediatedSchema());
  EXPECT_DOUBLE_EQ(qef.Evaluate({0, 1}), 0.0);
  EXPECT_FALSE(qef.MatchFor({0, 1}).feasible);
}

}  // namespace
}  // namespace mube
