// Differential tests of the sparse candidate-blocked similarity index
// (src/text/sparse_similarity.h) against the dense SimilarityMatrix ground
// truth, plus the engine-level selection rule and metrics wiring. The
// contract under test: for every pair the dense matrix scores >= the
// index's floor, the sparse index stores a bit-identical float, and every
// consumer (Matcher, naive matcher, Mube engine) produces identical output
// on either implementation.

#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "core/mube.h"
#include "datagen/generator.h"
#include "datagen/scale.h"
#include "gtest/gtest.h"
#include "match/matcher.h"
#include "match/naive_matcher.h"
#include "metrics/metrics.h"
#include "text/similarity.h"
#include "text/similarity_matrix.h"
#include "text/sparse_similarity.h"

namespace mube {
namespace {

/// Row i's >= theta neighbors as (id, float bit pattern) — bitwise row
/// comparison across implementations.
std::vector<std::pair<uint32_t, uint32_t>> Row(const SimilaritySource& sim,
                                               size_t i, double theta) {
  std::vector<std::pair<uint32_t, uint32_t>> row;
  sim.ForEachNeighborAtLeast(i, theta, [&](size_t j, float s) {
    uint32_t bits;
    std::memcpy(&bits, &s, sizeof(bits));
    row.emplace_back(static_cast<uint32_t>(j), bits);
  });
  return row;
}

/// A perturbed Books universe — the paper's workload shape (shared domain
/// vocabulary, variant renames, off-domain noise) without tuples.
Universe BooksUniverse(size_t num_sources, uint64_t seed = 7) {
  GeneratorConfig config;
  config.seed = seed;
  config.num_sources = num_sources;
  config.attach_tuples = false;
  auto generated = GenerateUniverse(config);
  EXPECT_TRUE(generated.ok());
  return std::move(generated.ValueOrDie().universe);
}

TEST(SparseSimilarityTest, AtBitIdenticalToDenseForEveryPair) {
  const Universe u = BooksUniverse(50);
  NGramJaccard measure(3);
  SimilarityMatrix dense(u, measure);
  SparseSimilarityIndex sparse(u, measure);
  const size_t n = u.total_attribute_count();
  ASSERT_EQ(sparse.attribute_count(), n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      // Stored pairs return the stored float; unstored pairs go through the
      // exact fallback — both must equal the dense cell bitwise.
      ASSERT_EQ(sparse.At(i, j), dense.At(i, j)) << i << "," << j;
    }
  }
}

TEST(SparseSimilarityTest, NeighborRowsMatchDenseScanAtMatcherTheta) {
  const Universe u = BooksUniverse(60);
  NGramJaccard measure(3);
  SimilarityMatrix dense(u, measure);
  SparseSimilarityIndex sparse(u, measure);
  for (double theta : {0.5, 0.75, 0.9}) {
    for (size_t i = 0; i < u.total_attribute_count(); ++i) {
      ASSERT_EQ(Row(sparse, i, theta), Row(dense, i, theta))
          << "theta " << theta << " row " << i;
    }
  }
}

TEST(SparseSimilarityTest, SameSourceAndDiagonalAreZero) {
  // Two sources sharing an identical attribute name: cross-source pairs
  // score 1.0, same-source and diagonal pairs 0 on both implementations.
  Universe u;
  for (const char* name : {"a", "b"}) {
    Source s(0, name);
    s.AddAttribute(Attribute("title"));
    s.AddAttribute(Attribute("title"));
    u.AddSource(std::move(s));
  }
  NGramJaccard measure(3);
  SparseSimilarityIndex sparse(u, measure);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(sparse.At(i, i), 0.0);
  }
  EXPECT_EQ(sparse.At(0, 1), 0.0);  // same source
  EXPECT_EQ(sparse.At(2, 3), 0.0);
  EXPECT_EQ(sparse.At(0, 2), 1.0);  // cross source, identical name
  EXPECT_EQ(sparse.At(1, 3), 1.0);
  EXPECT_TRUE(Row(sparse, 0, 0.5) ==
              (std::vector<std::pair<uint32_t, uint32_t>>{
                  {2, 0x3f800000u}, {3, 0x3f800000u}}));
}

TEST(SparseSimilarityTest, ApplyChurnBitIdenticalToFreshRebuild) {
  Universe u = BooksUniverse(40);
  NGramJaccard measure(3);
  SparseSimilarityIndex index(u, measure);

  // Churn: retire two sources, rename an attribute, append two sources.
  std::vector<uint32_t> dirty = {3, 17};
  u.RetireSource(3);
  u.RetireSource(17);
  ASSERT_TRUE(
      u.mutable_source(5).RenameAttribute(0, "Publication Year").ok());
  dirty.push_back(5);
  {
    Universe extra = BooksUniverse(42, /*seed=*/9);
    dirty.push_back(u.AddSource(extra.source(40)));
    dirty.push_back(u.AddSource(extra.source(41)));
  }
  index.ApplyChurn(u, measure, dirty);
  const size_t churn_calls = index.last_measure_calls();

  SparseSimilarityIndex rebuilt(u, measure);
  ASSERT_EQ(index.attribute_count(), rebuilt.attribute_count());
  for (size_t i = 0; i < index.attribute_count(); ++i) {
    ASSERT_EQ(Row(index, i, index.neighbor_floor()),
              Row(rebuilt, i, rebuilt.neighbor_floor()))
        << "row " << i;
    ASSERT_EQ(index.MaxSimilarityOf(i), rebuilt.MaxSimilarityOf(i));
  }
  // Incremental: the delta touched ~5 of 42 sources, so churn must cost
  // well under a rebuild.
  EXPECT_LT(churn_calls, rebuilt.last_measure_calls() / 2);
}

TEST(SparseSimilarityTest, RetiredSourceRowsEmptyAndAtZero) {
  Universe u = BooksUniverse(30);
  NGramJaccard measure(3);
  SparseSimilarityIndex index(u, measure);
  const uint32_t victim = 4;
  const size_t first = u.GlobalAttrIndex(AttributeRef(victim, 0));
  const size_t count = u.source(victim).attribute_count();
  u.RetireSource(victim);
  index.ApplyChurn(u, measure, {victim});
  for (size_t a = first; a < first + count; ++a) {
    EXPECT_TRUE(Row(index, a, index.neighbor_floor()).empty());
    EXPECT_EQ(index.MaxSimilarityOf(a), 0.0);
    EXPECT_EQ(index.At(a, (a + count) % index.attribute_count()), 0.0);
  }
  // Surviving rows must not enumerate the retired attributes.
  for (size_t i = 0; i < index.attribute_count(); ++i) {
    for (const auto& [j, bits] : Row(index, i, index.neighbor_floor())) {
      (void)bits;
      EXPECT_TRUE(j < first || j >= first + count);
    }
  }
}

TEST(SparseSimilarityTest, CloneIsIndependentOfSubsequentChurn) {
  Universe u = BooksUniverse(30);
  NGramJaccard measure(3);
  SparseSimilarityIndex index(u, measure);
  std::vector<std::vector<std::pair<uint32_t, uint32_t>>> before;
  for (size_t i = 0; i < index.attribute_count(); ++i) {
    before.push_back(Row(index, i, index.neighbor_floor()));
  }
  std::unique_ptr<SimilaritySource> clone = index.CloneSource();
  u.RetireSource(0);
  index.ApplyChurn(u, measure, {0});
  ASSERT_EQ(clone->attribute_count(), before.size());
  for (size_t i = 0; i < before.size(); ++i) {
    EXPECT_EQ(Row(*clone, i, clone->neighbor_floor()), before[i]);
  }
  // The mutated original diverged (source 0's rows emptied).
  EXPECT_NE(Row(index, 0, index.neighbor_floor()), before[0]);
}

TEST(SparseSimilarityTest, MatcherIdenticalOnDenseAndSparse) {
  const Universe u = BooksUniverse(60);
  NGramJaccard measure(3);
  SimilarityMatrix dense(u, measure);
  SparseSimilarityIndex sparse(u, measure);
  Matcher dense_matcher(u, dense);
  Matcher sparse_matcher(u, sparse);
  std::vector<uint32_t> ids;
  for (uint32_t i = 0; i < u.size(); i += 2) ids.push_back(i);
  for (const ClusterLinkage linkage :
       {ClusterLinkage::kMax, ClusterLinkage::kAverage}) {
    for (const double theta : {0.6, 0.75, 0.9}) {
      MatchOptions options;
      options.theta = theta;
      options.linkage = linkage;
      auto want = dense_matcher.Match(ids, options);
      auto have = sparse_matcher.Match(ids, options);
      ASSERT_TRUE(want.ok() && have.ok());
      EXPECT_EQ(want.ValueOrDie().schema, have.ValueOrDie().schema)
          << "theta " << theta;
      EXPECT_EQ(want.ValueOrDie().quality, have.ValueOrDie().quality);
      EXPECT_EQ(want.ValueOrDie().ga_quality, have.ValueOrDie().ga_quality);
    }
  }
}

TEST(SparseSimilarityTest, MatcherRejectsThetaBelowNeighborFloor) {
  const Universe u = BooksUniverse(20);
  NGramJaccard measure(3);
  SparseIndexOptions options;
  options.index_theta = 0.5;
  SparseSimilarityIndex sparse(u, measure, options);
  Matcher matcher(u, sparse);
  std::vector<uint32_t> ids = {0, 1, 2, 3};
  MatchOptions match_options;
  match_options.theta = 0.3;  // below the index's floor: not enumerable
  auto result = matcher.Match(ids, match_options);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInvalidArgument());

  // The dense matrix (floor 0) accepts the same theta.
  SimilarityMatrix dense(u, measure);
  Matcher dense_matcher(u, dense);
  EXPECT_TRUE(dense_matcher.Match(ids, match_options).ok());
}

TEST(SparseSimilarityTest, NaiveMatcherIdenticalOnDenseAndSparse) {
  const Universe u = BooksUniverse(40);
  NGramJaccard measure(3);
  SimilarityMatrix dense(u, measure);
  SparseSimilarityIndex sparse(u, measure);
  std::vector<uint32_t> ids;
  for (uint32_t i = 0; i < u.size(); ++i) ids.push_back(i);
  // 0.75 >= the sparse floor exercises neighbor enumeration; 0.3 exercises
  // the exhaustive below-floor fallback (exact on both implementations).
  for (const double theta : {0.75, 0.3}) {
    const NaiveMatchResult want =
        NaiveComponentsMatch(u, dense, ids, theta);
    const NaiveMatchResult have =
        NaiveComponentsMatch(u, sparse, ids, theta);
    EXPECT_EQ(want.schema, have.schema) << "theta " << theta;
    EXPECT_EQ(want.invalid_gas, have.invalid_gas);
    EXPECT_EQ(want.quality, have.quality);
  }
}

// ------------------------------------------------ engine selection + wiring --

MubeConfig EngineConfig() {
  MubeConfig config = MubeConfig::PaperDefaults();
  config.optimizer_options.max_evaluations = 400;
  config.optimizer_options.patience = 150;
  config.optimizer_options.seed = 1;
  config.max_sources = 8;
  return config;
}

TEST(SparseEngineTest, DenseAndSparseEnginesReturnIdenticalRuns) {
  const Universe u = BooksUniverse(50);
  MubeConfig dense_config = EngineConfig();
  dense_config.similarity_index = "dense";
  MubeConfig sparse_config = EngineConfig();
  sparse_config.similarity_index = "sparse";
  auto dense_engine = Mube::Create(&u, dense_config);
  auto sparse_engine = Mube::Create(&u, sparse_config);
  ASSERT_TRUE(dense_engine.ok() && sparse_engine.ok());
  EXPECT_EQ(dense_engine.ValueOrDie()->similarity().neighbor_floor(), 0.0);
  EXPECT_GT(sparse_engine.ValueOrDie()->similarity().neighbor_floor(), 0.0);
  RunSpec spec;
  spec.seed = 11;
  auto want = dense_engine.ValueOrDie()->Run(spec);
  auto have = sparse_engine.ValueOrDie()->Run(spec);
  ASSERT_TRUE(want.ok() && have.ok());
  EXPECT_EQ(want.ValueOrDie().solution.sources,
            have.ValueOrDie().solution.sources);
  EXPECT_EQ(want.ValueOrDie().solution.overall,
            have.ValueOrDie().solution.overall);
  EXPECT_EQ(want.ValueOrDie().solution.schema,
            have.ValueOrDie().solution.schema);
}

TEST(SparseEngineTest, AutoSelectionFollowsAttributeThreshold) {
  const Universe u = BooksUniverse(30);
  MubeConfig config = EngineConfig();
  config.similarity_index = "auto";
  config.sparse_attr_threshold = 10;  // universe is far above: sparse
  auto sparse_engine = Mube::Create(&u, config);
  ASSERT_TRUE(sparse_engine.ok());
  EXPECT_GT(sparse_engine.ValueOrDie()->similarity().neighbor_floor(), 0.0);

  config.sparse_attr_threshold = 1u << 20;  // far below: dense
  auto dense_engine = Mube::Create(&u, config);
  ASSERT_TRUE(dense_engine.ok());
  EXPECT_EQ(dense_engine.ValueOrDie()->similarity().neighbor_floor(), 0.0);
}

TEST(SparseEngineTest, SparseRejectsMeasureWithoutPreparedTokens) {
  const Universe u = BooksUniverse(20);
  MubeConfig config = EngineConfig();
  config.similarity_index = "sparse";
  config.similarity_measure = "levenshtein";
  auto engine = Mube::Create(&u, config);
  ASSERT_FALSE(engine.ok());
  EXPECT_TRUE(engine.status().IsInvalidArgument());

  // "auto" with the same measure silently stays dense instead.
  config.similarity_index = "auto";
  config.sparse_attr_threshold = 1;
  auto dense_engine = Mube::Create(&u, config);
  ASSERT_TRUE(dense_engine.ok());
  EXPECT_EQ(dense_engine.ValueOrDie()->similarity().neighbor_floor(), 0.0);
}

TEST(SparseEngineTest, BlockingMetricsReachTheRegistry) {
  const Universe u = BooksUniverse(40);
  MubeConfig config = EngineConfig();
  config.similarity_index = "sparse";
  auto engine = Mube::Create(&u, config);
  ASSERT_TRUE(engine.ok());
  MetricsRegistry registry;
  engine.ValueOrDie()->AttachMetrics(&registry, "mube");
  EXPECT_GT(
      registry.GetCounter("mube_similarity_candidate_pairs_total")->Value(),
      0u);
  EXPECT_GT(
      registry.GetCounter("mube_similarity_pruned_pairs_total")->Value(), 0u);
  EXPECT_GT(registry.GetGauge("mube_similarity_index_memory_bytes")->Value(),
            0.0);
  const std::string text = registry.Expose();
  EXPECT_NE(text.find("# TYPE mube_similarity_index_memory_bytes gauge"),
            std::string::npos);
}

TEST(SparseEngineTest, ForkClonesIndexAndStaysConsistentUnderChurn) {
  // The serving layer's COW step: fork the engine onto a cloned universe,
  // churn the clone, and check the fork's sparse index answers exactly as
  // a from-scratch engine on the mutated universe would.
  const Universe u = BooksUniverse(40);
  MubeConfig config = EngineConfig();
  config.similarity_index = "sparse";
  auto engine = Mube::Create(&u, config);
  ASSERT_TRUE(engine.ok());

  Universe mutated = u.Clone();
  auto fork = engine.ValueOrDie()->Fork(&mutated);
  ASSERT_TRUE(fork.ok());
  RunSpec spec;
  spec.seed = 5;
  auto want = engine.ValueOrDie()->Run(spec);
  auto have = fork.ValueOrDie()->Run(spec);
  ASSERT_TRUE(want.ok() && have.ok());
  EXPECT_EQ(want.ValueOrDie().solution.overall,
            have.ValueOrDie().solution.overall);
}

// --------------------------------------------------------- scale generator --

TEST(ScaleGeneratorTest, DeterministicAndPrefixStable) {
  ScaleConfig config;
  config.num_sources = 450;
  auto a = GenerateScaleUniverse(config);
  auto b = GenerateScaleUniverse(config);
  config.num_sources = 650;
  auto longer = GenerateScaleUniverse(config);
  ASSERT_TRUE(a.ok() && b.ok() && longer.ok());
  const Universe& ua = a.ValueOrDie().universe;
  const Universe& ub = b.ValueOrDie().universe;
  const Universe& ul = longer.ValueOrDie().universe;
  ASSERT_EQ(ua.size(), 450u);
  ASSERT_EQ(ul.size(), 650u);
  for (uint32_t i = 0; i < ua.size(); ++i) {
    ASSERT_EQ(ua.source(i).name(), ub.source(i).name());
    ASSERT_EQ(ua.source(i).attributes(), ub.source(i).attributes());
    // Prefix stability: per-domain RNG streams make the first 450 sources
    // independent of how many domains follow.
    ASSERT_EQ(ua.source(i).attributes(), ul.source(i).attributes());
  }
}

TEST(ScaleGeneratorTest, WithinFamilyPairsClearThetaAcrossDomainsDoNot) {
  ScaleConfig config;
  config.num_sources = 400;  // two domains
  auto generated = GenerateScaleUniverse(config);
  ASSERT_TRUE(generated.ok());
  const Universe& u = generated.ValueOrDie().universe;
  NGramJaccard measure(3);
  // Group attribute names by ground-truth concept.
  std::map<int32_t, std::vector<std::string>> families;
  for (const Source& s : u.sources()) {
    for (const Attribute& a : s.attributes()) {
      families[a.concept_id].push_back(a.normalized);
    }
  }
  for (const auto& [concept_id, names] : families) {
    ASSERT_NE(concept_id, kNoConcept);
    for (size_t i = 0; i < names.size(); i += 7) {
      for (size_t j = i + 1; j < names.size(); j += 7) {
        EXPECT_GE(measure.Similarity(names[i], names[j]), 0.75)
            << names[i] << " vs " << names[j];
      }
    }
  }
}

TEST(ScaleGeneratorTest, ValidatesParameters) {
  ScaleConfig config;
  config.base_word_min = 5;  // (L-2)/L < 0.75 — the family bound breaks
  EXPECT_FALSE(GenerateScaleUniverse(config).ok());
  config = ScaleConfig();
  config.base_word_max = 24;
  config.variants_per_concept = 4;  // 24 + 3 > 26 distinct letters
  EXPECT_FALSE(GenerateScaleUniverse(config).ok());
}

}  // namespace
}  // namespace mube
