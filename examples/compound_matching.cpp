// The n:m matching extension of paper §2.1: compound schema elements.
//
// Real web sources disagree on attribute granularity — one form asks for
// "author name", another for "author first name" + "author last name". A
// 1:1 matcher can never relate them. Declaring a compound element over the
// split attributes lets the unchanged µBE pipeline match at the compound
// level, and the match projects back to a 1:2 correspondence.

#include <cstdio>

#include "match/matcher.h"
#include "schema/compound.h"
#include "schema/universe.h"
#include "text/similarity.h"
#include "text/similarity_matrix.h"

int main() {
  // Three book sources with mismatched granularity.
  mube::Universe universe;
  {
    mube::Source s(0, "monolith.books");
    s.AddAttribute(mube::Attribute("author name"));
    s.AddAttribute(mube::Attribute("title"));
    universe.AddSource(std::move(s));
  }
  {
    mube::Source s(0, "split.books");
    s.AddAttribute(mube::Attribute("author first name"));
    s.AddAttribute(mube::Attribute("author last name"));
    s.AddAttribute(mube::Attribute("title"));
    universe.AddSource(std::move(s));
  }
  {
    mube::Source s(0, "third.books");
    s.AddAttribute(mube::Attribute("author name"));
    s.AddAttribute(mube::Attribute("title"));
    universe.AddSource(std::move(s));
  }

  std::printf("catalog:\n");
  for (const mube::Source& s : universe.sources()) {
    std::printf("  %s\n", s.ToString().c_str());
  }

  // Without compounds: the split source's author halves match nothing.
  {
    mube::NGramJaccard measure(3);
    mube::SimilarityMatrix matrix(universe, measure);
    mube::Matcher matcher(universe, matrix);
    mube::MatchOptions options;
    options.theta = 0.75;
    auto result = matcher.Match({0, 1, 2}, options);
    std::printf("\nwithout compound elements (%zu GAs):\n%s",
                result.ValueOrDie().schema.size(),
                result.ValueOrDie().schema.ToString(universe).c_str());
  }

  // Declare {author first name, author last name} as one compound element
  // named "author name" and re-run the identical pipeline.
  mube::CompoundSpec spec;
  spec.source_id = 1;
  spec.attr_indices = {0, 1};
  spec.name = "author name";
  auto built = mube::CompoundExpansion::Build(universe, {spec});
  if (!built.ok()) {
    std::fprintf(stderr, "%s\n", built.status().ToString().c_str());
    return 1;
  }
  const mube::CompoundExpansion& expansion = built.ValueOrDie();

  mube::NGramJaccard measure(3);
  mube::SimilarityMatrix matrix(expansion.derived(), measure);
  mube::Matcher matcher(expansion.derived(), matrix);
  mube::MatchOptions options;
  options.theta = 0.75;
  auto result = matcher.Match({0, 1, 2}, options);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }
  const mube::MediatedSchema& schema = result.ValueOrDie().schema;
  std::printf("\nwith the compound element (%zu GAs):\n%s", schema.size(),
              schema.ToString(expansion.derived()).c_str());

  std::printf("\nprojected back to the original schemas (n:m groups):\n");
  for (const auto& group : expansion.ProjectToOriginal(schema)) {
    std::printf("  {");
    for (size_t i = 0; i < group.size(); ++i) {
      if (i > 0) std::printf(", ");
      std::printf("%s.%s",
                  universe.source(group[i].source_id).name().c_str(),
                  universe.attribute(group[i]).name.c_str());
    }
    std::printf("}\n");
  }
  return 0;
}
