// A text REPL over mube::Session — the command-line equivalent of the
// paper's GUI (Figure 4). The defining property of the µBE interface is
// that the output format (GA lines) doubles as the input constraint
// format; `show` prints GAs exactly as `ga <line>` accepts them.
//
// Usage:  ./interactive_session [catalog.txt]
//   With no argument, a synthetic 150-source Books universe is used.
//
// Commands:
//   run                      solve with current constraints
//   show                     print last result (editable format)
//   pin <source-name>        add a source constraint
//   unpin <source-id>        remove a source constraint
//   ga <src.attr, src.attr>  add a GA constraint
//   adopt <ga-index>         keep GA #i of the last result
//   clear                    drop all constraints
//   weights w1 w2 ...        set QEF weights (must sum to 1)
//   theta <t> | m <k>        set threshold / number of sources
//   optimizer <name>         tabu | sls | anneal | pso
//   sources                  list the catalog
//   save <file> | load <file>  persist / restore the constraint state
//   help | quit

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "common/string_util.h"
#include "core/session.h"
#include "datagen/generator.h"
#include "schema/serialization.h"

namespace {

mube::Result<mube::Universe> LoadCatalog(const char* path) {
  std::ifstream in(path);
  if (!in) return mube::Status::IoError(std::string("cannot open ") + path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return mube::ParseUniverse(buffer.str());
}

void PrintHelp() {
  std::printf(
      "commands: run | show | pin <name> | unpin <id> | ga <line> | "
      "adopt <i> | clear | weights ... | theta <t> | m <k> | "
      "optimizer <name> | sources | save <file> | load <file> | "
      "help | quit\n");
}

}  // namespace

int main(int argc, char** argv) {
  mube::Universe universe;
  if (argc > 1) {
    auto loaded = LoadCatalog(argv[1]);
    if (!loaded.ok()) {
      std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
      return 1;
    }
    universe = std::move(loaded).ValueOrDie();
    std::printf("loaded %zu sources from %s\n", universe.size(), argv[1]);
  } else {
    mube::GeneratorConfig gen;
    gen.num_sources = 150;
    gen.max_cardinality = 50'000;
    gen.tuple_pool_size = 500'000;
    auto generated = mube::GenerateUniverse(gen);
    if (!generated.ok()) {
      std::fprintf(stderr, "%s\n", generated.status().ToString().c_str());
      return 1;
    }
    universe = std::move(generated.ValueOrDie().universe);
    std::printf("synthesized %zu Books-domain sources\n", universe.size());
  }

  mube::MubeConfig config = mube::MubeConfig::PaperDefaults();
  config.max_sources = 15;
  auto session = mube::Session::Create(&universe, config);
  if (!session.ok()) {
    std::fprintf(stderr, "%s\n", session.status().ToString().c_str());
    return 1;
  }
  mube::Session& s = *session.ValueOrDie();
  PrintHelp();

  std::string line;
  while (std::printf("mube> "), std::fflush(stdout),
         std::getline(std::cin, line)) {
    const std::string_view trimmed = mube::Trim(line);
    if (trimmed.empty()) continue;
    std::istringstream in{std::string(trimmed)};
    std::string cmd;
    in >> cmd;

    mube::Status status;
    if (cmd == "quit" || cmd == "exit") {
      break;
    } else if (cmd == "help") {
      PrintHelp();
    } else if (cmd == "run") {
      auto result = s.Iterate();
      if (!result.ok()) {
        status = result.status();
      } else {
        std::printf("%s", s.RenderLastResult().c_str());
        std::printf("(%.2fs, %zu subsets matched)\n",
                    result.ValueOrDie().elapsed_seconds,
                    result.ValueOrDie().distinct_subsets_matched);
      }
    } else if (cmd == "show") {
      std::printf("%s", s.RenderLastResult().c_str());
    } else if (cmd == "pin") {
      std::string name;
      std::getline(in, name);
      status = s.PinSource(std::string(mube::Trim(name)));
    } else if (cmd == "unpin") {
      uint32_t id = 0;
      in >> id;
      status = s.UnpinSource(id);
    } else if (cmd == "ga") {
      std::string rest;
      std::getline(in, rest);
      status = s.AddGaConstraintFromText(std::string(mube::Trim(rest)));
    } else if (cmd == "adopt") {
      size_t index = 0;
      in >> index;
      status = s.AdoptGaFromLastResult(index);
    } else if (cmd == "clear") {
      s.ClearGaConstraints();
      s.ClearSourcePins();
    } else if (cmd == "weights") {
      std::vector<double> weights;
      double w;
      while (in >> w) weights.push_back(w);
      status = s.SetWeights(weights);
    } else if (cmd == "theta") {
      double theta = 0;
      in >> theta;
      status = s.SetTheta(theta);
    } else if (cmd == "m") {
      size_t m = 0;
      in >> m;
      status = s.SetMaxSources(m);
    } else if (cmd == "optimizer") {
      std::string name;
      in >> name;
      status = s.SetOptimizer(name);
    } else if (cmd == "save") {
      std::string path;
      in >> path;
      std::ofstream out(path);
      if (!out) {
        status = mube::Status::IoError("cannot write " + path);
      } else {
        auto saved = s.SaveState();
        status = saved.status();
        if (saved.ok()) {
          out << saved.ValueOrDie();
          std::printf("saved session state to %s\n", path.c_str());
        }
      }
    } else if (cmd == "load") {
      std::string path;
      in >> path;
      std::ifstream file(path);
      if (!file) {
        status = mube::Status::IoError("cannot read " + path);
      } else {
        std::stringstream buffer;
        buffer << file.rdbuf();
        status = s.RestoreState(buffer.str());
        if (status.ok()) std::printf("restored from %s\n", path.c_str());
      }
    } else if (cmd == "sources") {
      for (const mube::Source& src : universe.sources()) {
        std::printf("  [%u] %s\n", src.id(), src.ToString().c_str());
      }
    } else {
      std::printf("unknown command '%s' — try 'help'\n", cmd.c_str());
    }

    if (!status.ok()) std::printf("error: %s\n", status.ToString().c_str());
  }
  return 0;
}
