// The full iterative workflow of paper §6 on the Books workload (§7.1):
// run, inspect, steer, re-run — each iteration's output feeding the next
// iteration's constraints. Demonstrates every feedback lever: pinning
// sources, adopting GAs, GA-constraint bridging of low-similarity variants
// ("author"/"writer"), re-weighting QEFs, and tightening θ.

#include <cstdio>

#include "core/ground_truth.h"
#include "core/session.h"
#include "datagen/books_corpus.h"
#include "datagen/generator.h"

namespace {

void Banner(const char* text) { std::printf("\n=== %s ===\n", text); }

void Summarize(const mube::Session& session,
               const mube::GeneratedUniverse& generated) {
  const mube::MubeResult& r = session.last_result();
  const mube::GaQualityReport report = mube::ScoreAgainstConcepts(
      generated.universe, r.solution, generated.num_concepts);
  std::printf("Q = %.4f, |M| = %zu GAs, time %.2fs | %s\n",
              r.solution.overall, r.solution.schema.size(),
              r.elapsed_seconds, report.ToString().c_str());
}

}  // namespace

int main() {
  mube::GeneratorConfig gen;
  gen.num_sources = 200;
  gen.max_cardinality = 100'000;
  gen.tuple_pool_size = 1'000'000;
  gen.seed = 2007;
  auto generated = mube::GenerateUniverse(gen);
  if (!generated.ok()) {
    std::fprintf(stderr, "%s\n", generated.status().ToString().c_str());
    return 1;
  }
  const mube::GeneratedUniverse& g = generated.ValueOrDie();

  mube::MubeConfig config = mube::MubeConfig::PaperDefaults();
  config.max_sources = 20;
  auto session = mube::Session::Create(&g.universe, config);
  if (!session.ok()) {
    std::fprintf(stderr, "%s\n", session.status().ToString().c_str());
    return 1;
  }
  mube::Session& s = *session.ValueOrDie();

  Banner("iteration 1: exploratory, defaults");
  if (auto r = s.Iterate(); !r.ok()) {
    std::fprintf(stderr, "%s\n", r.status().ToString().c_str());
    return 1;
  }
  Summarize(s, g);

  Banner("iteration 2: keep the two biggest GAs, pin a trusted source");
  {
    // Adopt the two largest GAs from iteration 1 as constraints.
    const mube::MediatedSchema& schema = s.last_result().solution.schema;
    size_t best = 0, second = 0;
    for (size_t i = 1; i < schema.size(); ++i) {
      if (schema.ga(i).size() > schema.ga(best).size()) {
        second = best;
        best = i;
      } else if (i != best && schema.ga(i).size() > schema.ga(second).size()) {
        second = i;
      }
    }
    (void)s.AdoptGaFromLastResult(best);
    if (schema.size() > 1) (void)s.AdoptGaFromLastResult(second);
    // The user trusts the first unperturbed catalog entry.
    (void)s.PinSource(g.unperturbed_source_ids.front());
  }
  if (auto r = s.Iterate(); !r.ok()) {
    std::fprintf(stderr, "%s\n", r.status().ToString().c_str());
    return 1;
  }
  Summarize(s, g);

  Banner("iteration 3: bridge 'author' and 'writer' by example");
  {
    // "author" vs "writer": 3-gram Jaccard 0 — only domain knowledge can
    // join them. Find one source exposing each and constrain them together.
    const mube::Universe& u = g.universe;
    int32_t author_sid = -1, writer_sid = -1;
    uint32_t author_idx = 0, writer_idx = 0;
    for (const mube::Source& src : u.sources()) {
      if (author_sid < 0) {
        if (auto idx = src.FindAttribute("author"); idx.has_value()) {
          author_sid = static_cast<int32_t>(src.id());
          author_idx = *idx;
          continue;  // don't take writer from the same source
        }
      }
      if (writer_sid < 0) {
        if (auto idx = src.FindAttribute("writer"); idx.has_value()) {
          writer_sid = static_cast<int32_t>(src.id());
          writer_idx = *idx;
        }
      }
      if (author_sid >= 0 && writer_sid >= 0) break;
    }
    if (author_sid >= 0 && writer_sid >= 0) {
      mube::GlobalAttribute bridge;
      bridge.Insert(
          mube::AttributeRef(static_cast<uint32_t>(author_sid), author_idx));
      bridge.Insert(
          mube::AttributeRef(static_cast<uint32_t>(writer_sid), writer_idx));
      if (auto st = s.AddGaConstraint(bridge); !st.ok()) {
        std::printf("(bridge rejected: %s)\n", st.ToString().c_str());
      } else {
        std::printf("bridged %s with %s\n",
                    u.source(author_sid).name().c_str(),
                    u.source(writer_sid).name().c_str());
      }
    } else {
      std::printf("(no author/writer pair in this universe)\n");
    }
  }
  if (auto r = s.Iterate(); !r.ok()) {
    std::fprintf(stderr, "%s\n", r.status().ToString().c_str());
    return 1;
  }
  Summarize(s, g);

  Banner("iteration 4: user now cares most about coverage");
  (void)s.SetWeights({0.15, 0.15, 0.45, 0.15, 0.10});
  if (auto r = s.Iterate(); !r.ok()) {
    std::fprintf(stderr, "%s\n", r.status().ToString().c_str());
    return 1;
  }
  Summarize(s, g);

  Banner("iteration 5: tighten theta for a high-precision final schema");
  (void)s.SetTheta(0.85);
  if (auto r = s.Iterate(); !r.ok()) {
    std::fprintf(stderr, "%s\n", r.status().ToString().c_str());
    return 1;
  }
  Summarize(s, g);

  Banner("final mediated schema");
  std::printf("%s", s.last_result().solution.schema
                        .ToString(g.universe)
                        .c_str());

  std::printf("\nQ(S) across iterations:");
  for (const mube::MubeResult& r : s.history()) {
    std::printf(" %.4f", r.solution.overall);
  }
  std::printf("\n");
  return 0;
}
