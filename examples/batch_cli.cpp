// Non-interactive command-line front end: load (or synthesize) a catalog,
// solve one µBE problem from flags, print the solution — the scripting
// counterpart of interactive_session. Exit code 0 iff a feasible solution
// was found.
//
// Usage:
//   batch_cli [--catalog FILE | --domain books|jobs --sources N]
//             [--m K] [--theta T] [--optimizer NAME] [--seed S]
//             [--weights w1,w2,w3,w4,w5] [--pin SOURCE]... [--ga LINE]...
//             [--alternatives K] [--measure NAME]
//
// Examples:
//   batch_cli --domain books --sources 200 --m 20
//   batch_cli --catalog examples/catalogs/theater.catalog --m 5 --theta 0.7
//   batch_cli --domain jobs --sources 150 --m 12 --alternatives 3

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/string_util.h"
#include "core/mube.h"
#include "datagen/generator.h"
#include "schema/serialization.h"

namespace {

struct Args {
  std::string catalog;
  std::string domain = "books";
  size_t sources = 200;
  size_t m = 20;
  double theta = -1.0;
  std::string optimizer;
  std::string measure;
  uint64_t seed = 1;
  std::vector<double> weights;
  std::vector<std::string> pins;
  std::vector<std::string> gas;
  size_t alternatives = 1;
};

bool ParseArgs(int argc, char** argv, Args* args) {
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> const char* {
      return (i + 1 < argc) ? argv[++i] : nullptr;
    };
    const char* value = nullptr;
    if (flag == "--catalog" && (value = next())) {
      args->catalog = value;
    } else if (flag == "--domain" && (value = next())) {
      args->domain = value;
    } else if (flag == "--sources" && (value = next())) {
      args->sources = std::strtoull(value, nullptr, 10);
    } else if (flag == "--m" && (value = next())) {
      args->m = std::strtoull(value, nullptr, 10);
    } else if (flag == "--theta" && (value = next())) {
      args->theta = std::strtod(value, nullptr);
    } else if (flag == "--optimizer" && (value = next())) {
      args->optimizer = value;
    } else if (flag == "--measure" && (value = next())) {
      args->measure = value;
    } else if (flag == "--seed" && (value = next())) {
      args->seed = std::strtoull(value, nullptr, 10);
    } else if (flag == "--weights" && (value = next())) {
      for (const std::string& piece : mube::SplitAndTrim(value, ',')) {
        args->weights.push_back(std::strtod(piece.c_str(), nullptr));
      }
    } else if (flag == "--pin" && (value = next())) {
      args->pins.push_back(value);
    } else if (flag == "--ga" && (value = next())) {
      args->gas.push_back(value);
    } else if (flag == "--alternatives" && (value = next())) {
      args->alternatives = std::strtoull(value, nullptr, 10);
    } else {
      std::fprintf(stderr, "unknown or incomplete flag: %s\n", flag.c_str());
      return false;
    }
  }
  return true;
}

void PrintResult(const mube::Universe& universe,
                 const mube::MubeResult& result, size_t rank) {
  std::printf("--- solution %zu: Q = %.4f (%.2fs, %zu subsets matched) ---\n",
              rank, result.solution.overall, result.elapsed_seconds,
              result.distinct_subsets_matched);
  std::printf("sources:");
  for (uint32_t sid : result.solution.sources) {
    std::printf(" %s", universe.source(sid).name().c_str());
  }
  std::printf("\nmediated schema (%zu GAs):\n%s",
              result.solution.schema.size(),
              mube::SerializeMediatedSchema(result.solution.schema,
                                            universe)
                  .c_str());
  for (size_t i = 0; i < result.qef_names.size(); ++i) {
    std::printf("  %-18s %.4f\n", result.qef_names[i].c_str(),
                result.solution.qef_values[i]);
  }
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) return 2;

  // --- Catalog ------------------------------------------------------------
  mube::Universe universe;
  if (!args.catalog.empty()) {
    std::ifstream in(args.catalog);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", args.catalog.c_str());
      return 2;
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    auto parsed = mube::ParseUniverse(buffer.str());
    if (!parsed.ok()) {
      std::fprintf(stderr, "%s\n", parsed.status().ToString().c_str());
      return 2;
    }
    universe = std::move(parsed).ValueOrDie();
  } else {
    mube::GeneratorConfig gen;
    gen.domain = args.domain;
    gen.num_sources = args.sources;
    gen.max_cardinality = 100'000;
    gen.tuple_pool_size = 1'000'000;
    gen.seed = args.seed;
    auto generated = mube::GenerateUniverse(gen);
    if (!generated.ok()) {
      std::fprintf(stderr, "%s\n", generated.status().ToString().c_str());
      return 2;
    }
    universe = std::move(generated.ValueOrDie().universe);
  }
  std::printf("catalog: %zu sources, %zu attributes\n", universe.size(),
              universe.total_attribute_count());

  // --- Engine ---------------------------------------------------------
  mube::MubeConfig config = mube::MubeConfig::PaperDefaults();
  config.max_sources = args.m;
  if (args.theta >= 0.0) config.theta = args.theta;
  if (!args.optimizer.empty()) config.optimizer = args.optimizer;
  if (!args.measure.empty()) config.similarity_measure = args.measure;
  auto engine = mube::Mube::Create(&universe, config);
  if (!engine.ok()) {
    std::fprintf(stderr, "%s\n", engine.status().ToString().c_str());
    return 2;
  }

  // --- RunSpec ----------------------------------------------------------
  mube::RunSpec spec;
  spec.seed = args.seed;
  if (!args.weights.empty()) spec.weights = args.weights;
  for (const std::string& name : args.pins) {
    auto sid = universe.FindSource(name);
    if (!sid.has_value()) {
      std::fprintf(stderr, "--pin: no source named '%s'\n", name.c_str());
      return 2;
    }
    spec.source_constraints.push_back(*sid);
  }
  for (const std::string& line : args.gas) {
    auto ga = mube::ParseGlobalAttribute(line, universe);
    if (!ga.ok()) {
      std::fprintf(stderr, "--ga: %s\n", ga.status().ToString().c_str());
      return 2;
    }
    spec.ga_constraints.Add(ga.MoveValueUnsafe());
  }

  // --- Solve -----------------------------------------------------------
  if (args.alternatives <= 1) {
    auto result = engine.ValueOrDie()->Run(spec);
    if (!result.ok()) {
      std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
      return 1;
    }
    PrintResult(universe, result.ValueOrDie(), 1);
  } else {
    auto results =
        engine.ValueOrDie()->RunAlternatives(spec, args.alternatives);
    if (!results.ok()) {
      std::fprintf(stderr, "%s\n", results.status().ToString().c_str());
      return 1;
    }
    for (size_t i = 0; i < results.ValueOrDie().size(); ++i) {
      PrintResult(universe, results.ValueOrDie()[i], i + 1);
    }
  }
  return 0;
}
