// Executing mediated queries over a µBE solution — what the selected
// sources and mediated schema are *for*. Runs µBE on the Books workload,
// then poses conjunctive selections against the resulting integration
// system and reports answers, duplicate-merge overhead, conflicts, and
// simulated cost; finally contrasts the chosen 15-source system against
// naively querying all 150 sources.

#include <cstdio>

#include "core/mube.h"
#include "datagen/generator.h"
#include "exec/executor.h"

namespace {

void RunAndReport(const mube::MediatedExecutor& exec,
                  const mube::Query& query, const char* label) {
  auto result = exec.Execute(query);
  if (!result.ok()) {
    std::fprintf(stderr, "%s: %s\n", label,
                 result.status().ToString().c_str());
    return;
  }
  std::printf("  %-34s -> %s\n", query.ToString().c_str(),
              result.ValueOrDie().Summary().c_str());
}

}  // namespace

int main() {
  mube::GeneratorConfig gen;
  gen.num_sources = 150;
  gen.max_cardinality = 60'000;
  gen.tuple_pool_size = 600'000;
  gen.seed = 99;
  auto generated = mube::GenerateUniverse(gen);
  if (!generated.ok()) {
    std::fprintf(stderr, "%s\n", generated.status().ToString().c_str());
    return 1;
  }
  const mube::Universe& universe = generated.ValueOrDie().universe;

  mube::MubeConfig config = mube::MubeConfig::PaperDefaults();
  config.max_sources = 15;
  auto engine = mube::Mube::Create(&universe, config);
  if (!engine.ok()) {
    std::fprintf(stderr, "%s\n", engine.status().ToString().c_str());
    return 1;
  }
  auto solved = engine.ValueOrDie()->Run(mube::RunSpec());
  if (!solved.ok()) {
    std::fprintf(stderr, "%s\n", solved.status().ToString().c_str());
    return 1;
  }
  const mube::SolutionEval& solution = solved.ValueOrDie().solution;
  std::printf("integration system: %zu sources, %zu GAs, Q = %.4f\n",
              solution.sources.size(), solution.schema.size(),
              solution.overall);

  mube::MediatedExecutor exec(universe, solution);

  std::printf("\nqueries over the chosen system:\n");
  {
    mube::Query q;  // full scan
    RunAndReport(exec, q, "scan");
  }
  {
    mube::Query q;
    q.predicates = {{0, mube::CompareOp::kEq, 7}};
    RunAndReport(exec, q, "point");
  }
  {
    mube::Query q;
    q.predicates = {{0, mube::CompareOp::kLt, 64}};
    if (solution.schema.size() > 1) {
      q.predicates.push_back({1, mube::CompareOp::kGe, 512});
    }
    RunAndReport(exec, q, "range");
  }
  {
    mube::Query q;
    q.predicates = {{0, mube::CompareOp::kLt, 100}};
    q.limit = 10;
    RunAndReport(exec, q, "limited");
  }

  // The contrast the paper's introduction draws: including everything
  // maximizes coverage but pays for it in transfers and duplicates.
  std::printf("\nsame scan against ALL %zu sources (schema from Match(U)):\n",
              universe.size());
  std::vector<uint32_t> all;
  for (uint32_t i = 0; i < universe.size(); ++i) all.push_back(i);
  auto full_match =
      engine.ValueOrDie()->matcher().Match(all, mube::MatchOptions());
  if (!full_match.ok()) {
    std::fprintf(stderr, "%s\n", full_match.status().ToString().c_str());
    return 1;
  }
  mube::MediatedExecutor everything(universe, all,
                                    full_match.ValueOrDie().schema);
  mube::Query scan;
  RunAndReport(everything, scan, "scan-all");

  return 0;
}
