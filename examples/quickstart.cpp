// Quickstart: the shortest useful µBE program.
//
// Builds a synthetic Books-domain universe (the paper's §7.1 workload at
// small scale), asks µBE to pick 10 sources and a mediated schema with the
// paper's default quality weights, and prints the answer.
//
//   ./quickstart [num_sources] [num_to_choose]

#include <cstdio>
#include <cstdlib>

#include "core/ground_truth.h"
#include "core/mube.h"
#include "datagen/generator.h"

int main(int argc, char** argv) {
  const size_t num_sources = argc > 1 ? std::strtoul(argv[1], nullptr, 10)
                                      : 120;
  const size_t num_to_choose = argc > 2 ? std::strtoul(argv[2], nullptr, 10)
                                        : 10;

  // 1. Describe the universe of candidate sources. Here we synthesize one;
  //    a real deployment would load source descriptions discovered from a
  //    hidden-Web search engine (see schema/serialization.h for the text
  //    catalog format).
  mube::GeneratorConfig gen;
  gen.num_sources = num_sources;
  gen.max_cardinality = 50'000;
  gen.tuple_pool_size = 400'000;
  mube::Result<mube::GeneratedUniverse> generated =
      mube::GenerateUniverse(gen);
  if (!generated.ok()) {
    std::fprintf(stderr, "generate: %s\n",
                 generated.status().ToString().c_str());
    return 1;
  }
  const mube::Universe& universe = generated.ValueOrDie().universe;
  std::printf("universe: %zu sources, %zu attributes\n", universe.size(),
              universe.total_attribute_count());

  // 2. Configure µBE. PaperDefaults() = matching .25, cardinality .25,
  //    coverage .20, redundancy .15, MTTF .15; theta 0.75; tabu search.
  mube::MubeConfig config = mube::MubeConfig::PaperDefaults();
  config.max_sources = num_to_choose;

  mube::Result<std::unique_ptr<mube::Mube>> engine =
      mube::Mube::Create(&universe, config);
  if (!engine.ok()) {
    std::fprintf(stderr, "create: %s\n", engine.status().ToString().c_str());
    return 1;
  }

  // 3. Solve. RunSpec() = no constraints; see books_feedback_loop.cpp for
  //    the iterative constrained workflow.
  mube::Result<mube::MubeResult> result =
      engine.ValueOrDie()->Run(mube::RunSpec());
  if (!result.ok()) {
    std::fprintf(stderr, "run: %s\n", result.status().ToString().c_str());
    return 1;
  }
  const mube::MubeResult& r = result.ValueOrDie();

  std::printf("\nchose %zu sources in %.2fs (Q = %.4f):\n",
              r.solution.sources.size(), r.elapsed_seconds,
              r.solution.overall);
  for (uint32_t sid : r.solution.sources) {
    std::printf("  %s  (|s| = %llu)\n", universe.source(sid).name().c_str(),
                static_cast<unsigned long long>(
                    universe.source(sid).cardinality()));
  }

  std::printf("\nmediated schema (%zu GAs):\n", r.solution.schema.size());
  std::printf("%s", r.solution.schema.ToString(universe).c_str());

  std::printf("\nper-QEF quality:\n");
  for (size_t i = 0; i < r.qef_names.size(); ++i) {
    std::printf("  %-14s %.4f\n", r.qef_names[i].c_str(),
                r.solution.qef_values[i]);
  }

  const mube::GaQualityReport report = mube::ScoreAgainstConcepts(
      universe, r.solution, generated.ValueOrDie().num_concepts);
  std::printf("\nvs ground truth: %s\n", report.ToString().c_str());
  return 0;
}
