// The paper's motivating scenario (Figure 1): a user wants to integrate
// hidden-Web theater-ticket sources discovered through CompletePlanet.com.
// The eleven schemas are reproduced verbatim; µBE must decide which to use
// and what mediated schema to define — including bridging "keyword"-style
// attributes with location-style attributes via a user GA constraint, the
// "matching by example" move of Figure 3.

#include <cstdio>

#include "core/session.h"
#include "datagen/theater.h"

namespace {

void PrintResult(const mube::Session& session) {
  std::printf("%s\n", session.RenderLastResult().c_str());
}

}  // namespace

int main() {
  mube::Universe universe = mube::TheaterUniverse();
  std::printf("catalog (from CompletePlanet.com, paper Figure 1):\n");
  for (const mube::Source& s : universe.sources()) {
    std::printf("  %s\n", s.ToString().c_str());
  }

  // Theater sources are latency-sensitive: replace the default MTTF QEF
  // with an inverted latency QEF (smaller latency = better).
  mube::MubeConfig config = mube::MubeConfig::PaperDefaults();
  config.qefs[4].characteristic = "latency";
  config.qefs[4].invert = true;
  config.max_sources = 6;
  // Hidden-Web attribute vocabularies are diverse; a lower threshold lets
  // near-variants ("keyword"/"keywords") cluster.
  config.theta = 0.7;

  auto session = mube::Session::Create(&universe, config);
  if (!session.ok()) {
    std::fprintf(stderr, "%s\n", session.status().ToString().c_str());
    return 1;
  }
  mube::Session& s = *session.ValueOrDie();

  std::printf("\n--- iteration 1: unconstrained ---\n");
  if (auto r = s.Iterate(); !r.ok()) {
    std::fprintf(stderr, "%s\n", r.status().ToString().c_str());
    return 1;
  }
  PrintResult(s);

  // The user knows "your town" (whatsonstage) and "city" (aceticket) are
  // the same concept even though no string measure will say so: bridge
  // them with a GA constraint, exactly like F name/Prenom in Figure 3.
  std::printf(
      "--- iteration 2: user bridges 'your town' with 'city', pins "
      "lastminute.com ---\n");
  if (auto st = s.AddGaConstraintFromText(
          "whatsonstage.com.your town, aceticket.com.city");
      !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  if (auto st = s.PinSource("lastminute.com"); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  if (auto r = s.Iterate(); !r.ok()) {
    std::fprintf(stderr, "%s\n", r.status().ToString().c_str());
    return 1;
  }
  PrintResult(s);

  // The bridged GA can now grow: "location" (lastminute.com) is similar to
  // neither "your town" nor "city" strongly, but the user can keep
  // folding knowledge in. Adopt the bridged GA and extend it.
  std::printf("--- iteration 3: user adopts + extends the location GA ---\n");
  const mube::MediatedSchema& schema = s.last_result().solution.schema;
  for (size_t i = 0; i < schema.size(); ++i) {
    // Find the GA holding the bridge and extend it with lastminute.com's
    // "location".
    const auto town = universe.FindSource("whatsonstage.com");
    if (town.has_value() && schema.ga(i).TouchesSource(*town)) {
      mube::GlobalAttribute extended = schema.ga(i);
      const auto lastminute = universe.FindSource("lastminute.com");
      const auto location =
          universe.source(*lastminute).FindAttribute("location");
      extended.Insert(mube::AttributeRef(*lastminute, *location));
      s.ClearGaConstraints();
      if (auto st = s.AddGaConstraint(extended); !st.ok()) {
        std::fprintf(stderr, "%s\n", st.ToString().c_str());
        return 1;
      }
      break;
    }
  }
  if (auto r = s.Iterate(); !r.ok()) {
    std::fprintf(stderr, "%s\n", r.status().ToString().c_str());
    return 1;
  }
  PrintResult(s);

  std::printf("done: %zu iterations, final Q = %.4f\n",
              s.history().size(), s.last_result().solution.overall);
  return 0;
}
