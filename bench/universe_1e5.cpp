// Internet-scale universe bench: the sparse candidate-blocked similarity
// index (3-gram inverted index + minhash-LSH, src/text/sparse_similarity.h)
// against the dense SimilarityMatrix it replaces at 10⁵-source scale.
//
// Exit-code-enforced bars (all recorded in BENCH_universe_scale.json):
//
//   build    sparse build time ≤ 1/20 of the dense build extrapolated
//            quadratically from a timed small prefix slice, and index
//            memory ≤ 1/20 of the dense triangle's 4·|A|²/2 bytes.
//   block    candidate pairs verified < 1% of the dense comparable-pair
//            count (cross-source, live pairs).
//   recall   ≥ 0.999 of the pairs ≥ θ = 0.75 found by an exhaustive dense
//            matrix on a 5k-source differential slice are enumerated by the
//            sparse index, with bit-identical scores for every covered pair.
//   churn    ApplyChurn after retiring/adding ~1% of the slice's sources
//            costs ≤ 10% of a fresh rebuild's measure calls and leaves
//            every row bit-identical to that rebuild.
//   e2e      a full engine (Mube::Create, auto-selected sparse index) runs
//            one optimizer iteration end-to-end on the full universe.
//
// MUBE_BENCH_QUICK=1 shrinks the universe (20k sources) and the slices —
// the CI universe-scale-smoke job — with the same bars enforced.

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/timer.h"
#include "core/mube.h"
#include "datagen/scale.h"
#include "text/similarity.h"
#include "text/similarity_matrix.h"
#include "text/sparse_similarity.h"

using namespace mube;         // NOLINT
using namespace mube::bench;  // NOLINT

namespace {

/// Resident set size from /proc/self/status, in bytes (0 if unreadable).
size_t CurrentRssBytes() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  size_t rss_kb = 0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::sscanf(line, "VmRSS: %zu kB", &rss_kb) == 1) break;
  }
  std::fclose(f);
  return rss_kb * 1024;
}

/// Cross-source live pairs a dense matrix would score — the denominator of
/// the blocking-effectiveness bar.
double DenseComparablePairs(const Universe& u) {
  double live_attrs = 0.0, same_source = 0.0;
  for (uint32_t s = 0; s < u.size(); ++s) {
    if (!u.alive(s)) continue;
    const double a = static_cast<double>(u.source(s).attribute_count());
    live_attrs += a;
    same_source += a * (a - 1.0) / 2.0;
  }
  return live_attrs * (live_attrs - 1.0) / 2.0 - same_source;
}

/// One row's ≥ theta neighbors as (id, bit-pattern) pairs, via the
/// SimilaritySource interface.
std::vector<std::pair<uint32_t, uint32_t>> RowAtLeast(
    const SimilaritySource& sim, size_t i, double theta) {
  std::vector<std::pair<uint32_t, uint32_t>> row;
  sim.ForEachNeighborAtLeast(i, theta, [&](size_t j, float s) {
    uint32_t bits;
    std::memcpy(&bits, &s, sizeof(bits));
    row.emplace_back(static_cast<uint32_t>(j), bits);
  });
  return row;
}

struct Bar {
  const char* name;
  double value = 0.0;
  double bar = 0.0;
  bool lower_is_better = false;
  bool pass = false;
};

}  // namespace

int main() {
  const bool quick = QuickMode();
  const size_t kFullSources = quick ? 20'000 : 100'000;
  const size_t kDenseRefSources = quick ? 400 : 1'000;
  const size_t kSliceSources = quick ? 1'200 : 5'000;
  const double kTheta = 0.75;

  auto cfg = [](size_t n) {
    ScaleConfig config;
    config.num_sources = n;
    return config;
  };
  NGramJaccard measure(3);
  std::vector<Bar> bars;

  // ---- dense reference slice: timed quadratic baseline ---------------------
  std::printf("universe_1e5: %zu sources (%s mode)\n", kFullSources,
              quick ? "quick" : "full");
  auto dense_ref = GenerateScaleUniverse(cfg(kDenseRefSources));
  if (!dense_ref.ok()) return 1;
  const size_t ref_attrs = dense_ref.ValueOrDie().universe
                               .total_attribute_count();
  WallTimer dense_timer;
  SimilarityMatrix ref_matrix(dense_ref.ValueOrDie().universe, measure);
  const double dense_ref_seconds = dense_timer.ElapsedSeconds();
  std::printf("  dense reference: %zu sources, %zu attrs, %.2fs\n",
              kDenseRefSources, ref_attrs, dense_ref_seconds);

  // ---- full sparse build ---------------------------------------------------
  auto full = GenerateScaleUniverse(cfg(kFullSources));
  if (!full.ok()) return 1;
  const Universe& fu = full.ValueOrDie().universe;
  const size_t full_attrs = fu.total_attribute_count();
  const double attr_ratio =
      static_cast<double>(full_attrs) / static_cast<double>(ref_attrs);
  const double dense_seconds_extrapolated =
      dense_ref_seconds * attr_ratio * attr_ratio;
  const double dense_bytes =
      4.0 * static_cast<double>(full_attrs) *
      static_cast<double>(full_attrs) / 2.0;

  WallTimer sparse_timer;
  SparseSimilarityIndex index(fu, measure);
  const double sparse_seconds = sparse_timer.ElapsedSeconds();
  const size_t rss_bytes = CurrentRssBytes();
  const SparseIndexStats& stats = index.stats();
  const double comparable = DenseComparablePairs(fu);
  std::printf(
      "  sparse build: %zu attrs in %.2fs (dense extrapolated: %.0fs), "
      "%.1f MB index (dense: %.0f MB), RSS %.1f MB\n",
      full_attrs, sparse_seconds, dense_seconds_extrapolated,
      static_cast<double>(index.MemoryBytes()) / 1e6, dense_bytes / 1e6,
      static_cast<double>(rss_bytes) / 1e6);
  std::printf(
      "  blocking: %llu candidates verified, %llu stored, %.0f dense "
      "comparable pairs\n",
      static_cast<unsigned long long>(stats.candidate_pairs),
      static_cast<unsigned long long>(stats.stored_pairs), comparable);

  bars.push_back({"build_time_vs_dense_extrapolated",
                  sparse_seconds / dense_seconds_extrapolated, 0.05, true,
                  false});
  bars.push_back({"index_bytes_vs_dense",
                  static_cast<double>(index.MemoryBytes()) / dense_bytes,
                  0.05, true, false});
  bars.push_back({"candidate_pair_fraction",
                  static_cast<double>(stats.candidate_pairs) / comparable,
                  0.01, true, false});

  // ---- differential slice: recall + bit-identity vs exhaustive dense ------
  auto slice = GenerateScaleUniverse(cfg(kSliceSources));
  if (!slice.ok()) return 1;
  Universe& su = slice.ValueOrDie().universe;
  const size_t slice_attrs = su.total_attribute_count();
  SimilarityMatrix dense_slice(su, measure);
  SparseSimilarityIndex sparse_slice(su, measure);
  uint64_t above_theta = 0, covered = 0, mismatched = 0;
  for (size_t i = 0; i < slice_attrs; ++i) {
    const auto want = RowAtLeast(dense_slice, i, kTheta);
    const auto have = RowAtLeast(sparse_slice, i, kTheta);
    size_t h = 0;
    for (const auto& [j, bits] : want) {
      ++above_theta;
      while (h < have.size() && have[h].first < j) ++h;
      if (h < have.size() && have[h].first == j) {
        ++covered;
        if (have[h].second != bits) ++mismatched;
      }
    }
  }
  const double recall =
      above_theta == 0
          ? 1.0
          : static_cast<double>(covered) / static_cast<double>(above_theta);
  std::printf(
      "  recall slice: %zu sources, %llu pairs >= %.2f, recall %.6f, "
      "%llu score mismatches\n",
      kSliceSources, static_cast<unsigned long long>(above_theta / 2), kTheta,
      recall, static_cast<unsigned long long>(mismatched));
  bars.push_back({"recall_above_theta", recall, 0.999, false, false});
  bars.push_back({"covered_score_mismatches",
                  static_cast<double>(mismatched), 0.0, true, false});

  // ---- churn: cost proportional to delta, bit-identical to rebuild --------
  const size_t kRetire = kSliceSources / 100;
  const size_t kAppend = kSliceSources / 100;
  auto extended = GenerateScaleUniverse(cfg(kSliceSources + kAppend));
  if (!extended.ok()) return 1;
  std::vector<uint32_t> dirty;
  for (size_t r = 0; r < kRetire; ++r) {
    const uint32_t id = static_cast<uint32_t>(r * 97 % kSliceSources);
    su.RetireSource(id);
    dirty.push_back(id);
  }
  for (size_t a = 0; a < kAppend; ++a) {
    // Prefix stability: source kSliceSources + a of the extended universe
    // is exactly the source churn would have discovered next.
    dirty.push_back(su.AddSource(
        extended.ValueOrDie().universe.source(
            static_cast<uint32_t>(kSliceSources + a))));
  }
  SparseSimilarityIndex churned = sparse_slice;
  churned.ApplyChurn(su, measure, dirty);
  const size_t churn_calls = churned.last_measure_calls();
  SparseSimilarityIndex rebuilt(su, measure);
  const size_t rebuild_calls = rebuilt.last_measure_calls();
  bool identical = churned.attribute_count() == rebuilt.attribute_count();
  for (size_t i = 0; identical && i < churned.attribute_count(); ++i) {
    identical = RowAtLeast(churned, i, churned.neighbor_floor()) ==
                RowAtLeast(rebuilt, i, rebuilt.neighbor_floor());
  }
  std::printf(
      "  churn: %zu retired + %zu added of %zu sources -> %zu measure calls "
      "(rebuild: %zu), rows %s\n",
      kRetire, kAppend, kSliceSources, churn_calls, rebuild_calls,
      identical ? "bit-identical" : "DIVERGED");
  bars.push_back({"churn_calls_vs_rebuild",
                  static_cast<double>(churn_calls) /
                      static_cast<double>(rebuild_calls),
                  0.10, true, false});
  bars.push_back({"churn_rows_identical", identical ? 1.0 : 0.0, 1.0, false,
                  false});

  // ---- end-to-end: engine + Match + one optimizer run at full scale -------
  MubeConfig config = MubeConfig::PaperDefaults();
  config.optimizer_options.max_evaluations = quick ? 500 : 3'000;
  config.optimizer_options.patience = quick ? 200 : 1'000;
  config.optimizer_options.seed = 1;
  WallTimer e2e_timer;
  auto engine = Mube::Create(&fu, config);
  bool e2e_ok = engine.ok();
  double run_seconds = 0.0, run_quality = 0.0;
  if (e2e_ok) {
    RunSpec spec;
    spec.seed = 3;
    auto result = engine.ValueOrDie()->Run(spec);
    e2e_ok = result.ok();
    if (e2e_ok) {
      run_seconds = result.ValueOrDie().elapsed_seconds;
      run_quality = result.ValueOrDie().solution.overall;
    } else {
      std::fprintf(stderr, "  e2e run: %s\n",
                   result.status().ToString().c_str());
    }
  } else {
    std::fprintf(stderr, "  e2e create: %s\n",
                 engine.status().ToString().c_str());
  }
  std::printf(
      "  e2e: create+run %.2fs total, Run() %.2fs, Q(S) = %.4f -> %s\n",
      e2e_timer.ElapsedSeconds(), run_seconds, run_quality,
      e2e_ok ? "ok" : "FAILED");
  bars.push_back({"e2e_engine_run", e2e_ok ? 1.0 : 0.0, 1.0, false, false});

  // ---- verdicts + artifact -------------------------------------------------
  bool all_pass = true;
  for (Bar& b : bars) {
    b.pass = b.lower_is_better ? b.value <= b.bar : b.value >= b.bar;
    all_pass = all_pass && b.pass;
    std::printf("  [%s] %-34s %12.6g (bar: %s %g)\n", b.pass ? "PASS" : "FAIL",
                b.name, b.value, b.lower_is_better ? "<=" : ">=", b.bar);
  }

  std::FILE* f = std::fopen("BENCH_universe_scale.json", "w");
  if (f != nullptr) {
    std::fprintf(f, "{\n  \"quick\": %s,\n", quick ? "true" : "false");
    std::fprintf(f, "  \"num_sources\": %zu,\n  \"num_attrs\": %zu,\n",
                 kFullSources, full_attrs);
    std::fprintf(f, "  \"sparse_build_seconds\": %.3f,\n", sparse_seconds);
    std::fprintf(f, "  \"dense_seconds_extrapolated\": %.1f,\n",
                 dense_seconds_extrapolated);
    std::fprintf(f, "  \"index_bytes\": %zu,\n  \"rss_bytes\": %zu,\n",
                 index.MemoryBytes(), rss_bytes);
    std::fprintf(f, "  \"candidate_pairs\": %llu,\n",
                 static_cast<unsigned long long>(stats.candidate_pairs));
    std::fprintf(f, "  \"stored_pairs\": %llu,\n",
                 static_cast<unsigned long long>(stats.stored_pairs));
    std::fprintf(f, "  \"dense_comparable_pairs\": %.0f,\n", comparable);
    std::fprintf(f, "  \"recall\": %.6f,\n  \"run_quality\": %.4f,\n",
                 recall, run_quality);
    std::fprintf(f, "  \"bars\": [\n");
    for (size_t i = 0; i < bars.size(); ++i) {
      std::fprintf(
          f,
          "    {\"name\": \"%s\", \"value\": %.6g, \"bar\": %g, "
          "\"cmp\": \"%s\", \"pass\": %s}%s\n",
          bars[i].name, bars[i].value, bars[i].bar,
          bars[i].lower_is_better ? "<=" : ">=",
          bars[i].pass ? "true" : "false", i + 1 < bars.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
  }

  std::printf("universe_1e5: %s\n", all_pass ? "ALL BARS PASS" : "BAR FAILED");
  return all_pass ? 0 : 1;
}
