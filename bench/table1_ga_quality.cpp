// Table 1: quality of the GAs chosen by µBE. Universe of 200 sources, no
// constraints, varying the number of sources to select. Reports the number
// of true GAs (distinct domain concepts recovered as pure GAs), the number
// of attributes covered by them, the number of recoverable-but-missed
// concepts, and the number of false GAs.
//
// Paper's expectations (their Table 1): with more sources selected, more
// of the 14 true GAs are found, fewer are missed, and more attributes are
// covered; µBE never produced a false GA.

#include <cstdio>

#include "bench/bench_util.h"
#include "core/ground_truth.h"
#include "core/mube.h"
#include "datagen/books_corpus.h"
#include "datagen/generator.h"

using namespace mube;        // NOLINT
using namespace mube::bench; // NOLINT

int main() {
  std::printf(
      "Table 1 — quality of GAs (|U| = 200, no constraints, %d true "
      "concepts)\n",
      kBooksConceptCount);
  std::printf(
      "paper shape: true GAs up, missed down, attributes up, 0 false GAs\n\n");

  auto generated = GenerateUniverse(PaperWorkload(200));
  if (!generated.ok()) {
    std::fprintf(stderr, "generate: %s\n",
                 generated.status().ToString().c_str());
    return 1;
  }
  const GeneratedUniverse& g = generated.ValueOrDie();

  const std::vector<size_t> chosen = QuickMode()
                                         ? std::vector<size_t>{10, 20, 30}
                                         : std::vector<size_t>{10, 20, 30,
                                                               40, 50};

  PrintHeader({"m", "true GAs", "attrs in GAs", "missed", "false GAs"});
  for (size_t m : chosen) {
    MubeConfig config = BenchConfig(200, m);
    auto engine = Mube::Create(&g.universe, config);
    if (!engine.ok()) {
      std::fprintf(stderr, "create: %s\n",
                   engine.status().ToString().c_str());
      return 1;
    }
    RunSpec spec;
    spec.seed = m;
    auto result = engine.ValueOrDie()->Run(spec);
    if (!result.ok()) {
      std::printf("%14zu%14s\n", m, "infeas");
      continue;
    }
    const GaQualityReport report = ScoreAgainstConcepts(
        g.universe, result.ValueOrDie().solution, g.num_concepts);
    std::printf("%14zu%14zu%14zu%14zu%14zu\n", m, report.true_gas_selected,
                report.attributes_in_true_gas, report.true_gas_missed,
                report.false_gas);
    std::fflush(stdout);
  }
  return 0;
}
