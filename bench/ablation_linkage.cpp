// Ablation (DESIGN.md §5.1): why Match(S) uses MAX cluster linkage.
//
// The paper's bridging story (§3, Figure 3) depends on it: a GA constraint
// joining two dissimilar attributes must keep growing through either
// endpoint's high-similarity neighbors. Under average linkage the
// dissimilar member drags every cross-cluster similarity down and the
// bridged cluster freezes.
//
// This bench builds Figure 3-style instances at growing scale and reports,
// for both linkages, how large the bridged GA grows and how many true GAs
// the full Books workload recovers.

#include <cstdio>

#include "bench/bench_util.h"
#include "core/ground_truth.h"
#include "match/matcher.h"
#include "schema/universe.h"
#include "text/similarity.h"
#include "text/similarity_matrix.h"

using namespace mube;        // NOLINT
using namespace mube::bench; // NOLINT

namespace {

/// A Figure 3 instance: one "f name"-family of k sources, one "prenom"-
/// family of k sources, and a user constraint bridging one attribute of
/// each family.
Universe BridgeUniverse(size_t family_size) {
  Universe u;
  for (size_t i = 0; i < family_size; ++i) {
    Source s(0, "fname" + std::to_string(i));
    s.AddAttribute(Attribute(i == 0 ? "f name" : "f names"));
    u.AddSource(std::move(s));
  }
  for (size_t i = 0; i < family_size; ++i) {
    Source s(0, "prenom" + std::to_string(i));
    s.AddAttribute(Attribute(i == 0 ? "prenom" : "prenoms"));
    u.AddSource(std::move(s));
  }
  return u;
}

size_t BridgedGaSize(const Universe& u, ClusterLinkage linkage) {
  NGramJaccard measure(3);
  SimilarityMatrix matrix(u, measure);
  Matcher matcher(u, matrix);
  MatchOptions options;
  options.theta = 0.6;
  options.linkage = linkage;

  MediatedSchema constraints;
  constraints.Add(GlobalAttribute(
      {AttributeRef(0, 0),
       AttributeRef(static_cast<uint32_t>(u.size() / 2), 0)}));
  std::vector<uint32_t> all;
  for (uint32_t i = 0; i < u.size(); ++i) all.push_back(i);

  auto result = matcher.Match(all, options, {}, constraints);
  if (!result.ok() || !result.ValueOrDie().feasible) return 0;
  // Find the GA containing the bridge endpoints.
  for (const GlobalAttribute& ga : result.ValueOrDie().schema.gas()) {
    if (ga.Contains(AttributeRef(0, 0))) return ga.size();
  }
  return 0;
}

}  // namespace

int main() {
  std::printf("Linkage ablation — size of the Figure 3 bridged GA\n");
  std::printf(
      "paper's max linkage keeps growing; average linkage freezes\n\n");

  PrintHeader({"family size", "max-link GA", "avg-link GA", "ideal"});
  for (size_t family : {2, 4, 8, 16}) {
    Universe u = BridgeUniverse(family);
    std::printf("%14zu%14zu%14zu%14zu\n", family,
                BridgedGaSize(u, ClusterLinkage::kMax),
                BridgedGaSize(u, ClusterLinkage::kAverage), 2 * family);
  }

  // Full-workload effect: true-GA recovery on the Books universe.
  std::printf("\nBooks workload (|U| = %d, full subset matched directly)\n",
              QuickMode() ? 60 : 200);
  auto generated = GenerateUniverse(PaperWorkload(QuickMode() ? 60 : 200));
  if (!generated.ok()) {
    std::fprintf(stderr, "generate: %s\n",
                 generated.status().ToString().c_str());
    return 1;
  }
  const Universe& u = generated.ValueOrDie().universe;
  NGramJaccard measure(3);
  SimilarityMatrix matrix(u, measure);
  Matcher matcher(u, matrix);
  std::vector<uint32_t> all;
  for (uint32_t i = 0; i < u.size(); ++i) all.push_back(i);

  PrintHeader({"linkage", "GAs", "true GAs", "false GAs", "F1"});
  for (ClusterLinkage linkage :
       {ClusterLinkage::kMax, ClusterLinkage::kAverage}) {
    MatchOptions options;
    options.theta = 0.75;
    options.linkage = linkage;
    auto result = matcher.Match(all, options);
    if (!result.ok()) continue;
    SolutionEval solution;
    solution.sources = all;
    solution.schema = result.ValueOrDie().schema;
    const GaQualityReport report = ScoreAgainstConcepts(
        u, solution, generated.ValueOrDie().num_concepts);
    std::printf("%14s%14zu%14zu%14zu%14.3f\n",
                linkage == ClusterLinkage::kMax ? "max" : "average",
                result.ValueOrDie().schema.size(), report.true_gas_selected,
                report.false_gas, result.ValueOrDie().quality);
  }
  return 0;
}
