// §7.3 / §4: accuracy of the PCSA probabilistic counting behind the
// Coverage and Redundancy QEFs. The paper reports the algorithm is "very
// accurate, with a worst case error of 7% compared to exact counting".
//
// This bench builds the paper-scale workload, then estimates the union
// cardinality of many random source subsets with PCSA signatures and with
// exact counting, reporting mean / p95 / worst relative error per subset
// size, plus signature memory (the paper's §7.1 notes the ~70MB footprint
// was dominated by these signatures).

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "common/random.h"
#include "datagen/generator.h"
#include "sketch/exact_counter.h"
#include "sketch/signature_cache.h"

using namespace mube;        // NOLINT
using namespace mube::bench; // NOLINT

int main() {
  std::printf("PCSA accuracy vs exact counting (§7.3: worst case ≈ 7%%)\n\n");

  GeneratorConfig workload = PaperWorkload(QuickMode() ? 60 : 200);
  auto generated = GenerateUniverse(workload);
  if (!generated.ok()) {
    std::fprintf(stderr, "generate: %s\n",
                 generated.status().ToString().c_str());
    return 1;
  }
  const Universe& universe = generated.ValueOrDie().universe;

  SignatureCache cache(universe, PcsaConfig());
  std::printf("signature memory: %.1f KB total (%zu cooperative sources, "
              "%zu bytes each)\n\n",
              cache.TotalSignatureBytes() / 1024.0,
              cache.cooperative_count(),
              cache.TotalSignatureBytes() /
                  std::max<size_t>(1, cache.cooperative_count()));

  PrintHeader({"subset size", "trials", "mean err%", "p95 err%",
               "worst err%"});

  Rng rng(1234);
  const size_t trials = QuickMode() ? 10 : 40;
  for (size_t subset_size : {2, 5, 10, 20, 50}) {
    if (subset_size > universe.size()) break;
    std::vector<double> errors;
    for (size_t t = 0; t < trials; ++t) {
      std::vector<size_t> picks =
          rng.SampleWithoutReplacement(universe.size(), subset_size);
      std::vector<uint32_t> subset;
      ExactCounter exact;
      for (size_t p : picks) {
        subset.push_back(static_cast<uint32_t>(p));
        exact.AddAll(universe.source(static_cast<uint32_t>(p)).tuples());
      }
      const double estimate = cache.EstimateUnion(subset);
      const double truth = static_cast<double>(exact.Count());
      if (truth > 0) {
        errors.push_back(std::abs(estimate - truth) / truth * 100.0);
      }
    }
    std::sort(errors.begin(), errors.end());
    double mean = 0.0;
    for (double e : errors) mean += e;
    mean /= static_cast<double>(errors.size());
    const double p95 = errors[static_cast<size_t>(
        0.95 * static_cast<double>(errors.size() - 1))];
    std::printf("%14zu%14zu%14.2f%14.2f%14.2f\n", subset_size, errors.size(),
                mean, p95, errors.back());
    std::fflush(stdout);
  }
  return 0;
}
