// Baseline comparison — the two "obvious" alternatives µBE's design
// rejects, quantified on the paper's workload:
//
//  A. Source selection: per-source greedy ranking (quality-driven selection
//     in the style of the paper's [17]) vs µBE's set-level tabu search.
//     The greedy ranker cannot see redundancy or matching complementarity.
//
//  B. Schema mediation: transitive-closure clustering (connected components
//     of the θ-similarity graph) vs Algorithm 1's greedy constrained
//     clustering. The naive clustering violates Definition 1 and chains
//     borderline pairs across concepts.

#include <cstdio>

#include "bench/bench_util.h"
#include "core/ground_truth.h"
#include "core/mube.h"
#include "datagen/generator.h"
#include "match/matcher.h"
#include "match/naive_matcher.h"
#include "qef/data_qefs.h"
#include "text/similarity_matrix.h"

using namespace mube;        // NOLINT
using namespace mube::bench; // NOLINT

int main() {
  auto generated = GenerateUniverse(PaperWorkload(QuickMode() ? 80 : 200));
  if (!generated.ok()) {
    std::fprintf(stderr, "generate: %s\n",
                 generated.status().ToString().c_str());
    return 1;
  }
  const GeneratedUniverse& g = generated.ValueOrDie();

  // ---- A: source selection ------------------------------------------------
  std::printf("A. source selection: per-source greedy vs tabu (m = 20)\n");
  std::printf(
      "expected: greedy wins on cardinality, loses on redundancy/overall\n\n");
  MubeConfig config = BenchConfig(g.universe.size(), 20);
  auto engine = Mube::Create(&g.universe, config);
  if (!engine.ok()) return 1;

  PrintHeader({"selector", "Q(S)", "matching", "cardinality", "coverage",
               "redundancy"});
  for (const char* name : {"tabu", "greedy_per_source"}) {
    RunSpec spec;
    spec.optimizer = std::string(name);
    spec.seed = 3;
    auto result = engine.ValueOrDie()->Run(spec);
    if (!result.ok()) {
      std::printf("%14s%14s\n", name, "infeas");
      continue;
    }
    const SolutionEval& s = result.ValueOrDie().solution;
    std::printf("%14s%14.4f%14.4f%14.4f%14.4f%14.4f\n",
                name, s.overall, s.qef_values[0], s.qef_values[1],
                s.qef_values[2], s.qef_values[3]);
  }

  // ---- B: schema mediation ------------------------------------------------
  std::printf(
      "\nB. schema mediation: transitive closure vs Algorithm 1 "
      "(full universe)\n");
  std::printf(
      "expected: naive clustering produces invalid GAs at low theta and can "
      "never beat Algorithm 1 on validity\n\n");
  NGramJaccard measure(3);
  SimilarityMatrix matrix(g.universe, measure);
  Matcher matcher(g.universe, matrix);
  std::vector<uint32_t> all;
  for (uint32_t i = 0; i < g.universe.size(); ++i) all.push_back(i);

  PrintHeader({"theta", "alg1 GAs", "alg1 false", "naive GAs",
               "naive invalid", "naive false"});
  for (double theta : {0.45, 0.60, 0.75, 0.90}) {
    MatchOptions options;
    options.theta = theta;
    auto alg1 = matcher.Match(all, options);
    if (!alg1.ok()) continue;
    SolutionEval alg1_eval;
    alg1_eval.sources = all;
    alg1_eval.schema = alg1.ValueOrDie().schema;
    const GaQualityReport alg1_report =
        ScoreAgainstConcepts(g.universe, alg1_eval, g.num_concepts);

    NaiveMatchResult naive =
        NaiveComponentsMatch(g.universe, matrix, all, theta);
    SolutionEval naive_eval;
    naive_eval.sources = all;
    naive_eval.schema = naive.schema;
    const GaQualityReport naive_report =
        ScoreAgainstConcepts(g.universe, naive_eval, g.num_concepts);

    std::printf("%14.2f%14zu%14zu%14zu%14zu%14zu\n", theta,
                alg1.ValueOrDie().schema.size(), alg1_report.false_gas,
                naive.schema.size(), naive.invalid_gas,
                naive_report.false_gas);
    std::fflush(stdout);
  }
  return 0;
}
