// Figure 5: execution time of µBE when choosing 20 sources from a universe
// of 100..700 sources, under the paper's five constraint configurations.
//
// Paper's expectations: time increases with universe size; adding
// constraints *reduces* time (the constrained regions of the search space
// are pruned).

#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "common/timer.h"
#include "core/mube.h"
#include "datagen/generator.h"

using namespace mube;        // NOLINT
using namespace mube::bench; // NOLINT

int main() {
  std::printf("Figure 5 — time (s) to choose 20 sources vs universe size\n");
  std::printf(
      "paper shape: rises with |U|; more constraints => faster\n\n");

  const std::vector<size_t> sizes =
      QuickMode() ? std::vector<size_t>{100, 200, 300}
                  : std::vector<size_t>{100, 200, 300, 400, 500, 600, 700};

  std::vector<std::string> columns = {"|U|"};
  for (const ConstraintConfig& config : PaperConstraintConfigs()) {
    columns.push_back(config.label);
  }
  columns.push_back("setup(s)");
  PrintHeader(columns);

  for (size_t n : sizes) {
    auto generated = GenerateUniverse(PaperWorkload(n));
    if (!generated.ok()) {
      std::fprintf(stderr, "generate(%zu): %s\n", n,
                   generated.status().ToString().c_str());
      return 1;
    }
    MubeConfig config = BenchConfig(n, 20);

    WallTimer setup_timer;
    auto engine = Mube::Create(&generated.ValueOrDie().universe, config);
    const double setup_seconds = setup_timer.ElapsedSeconds();
    if (!engine.ok()) {
      std::fprintf(stderr, "create: %s\n", engine.status().ToString().c_str());
      return 1;
    }

    std::printf("%14zu", n);
    for (const ConstraintConfig& cc : PaperConstraintConfigs()) {
      RunSpec spec = MakeRunSpec(generated.ValueOrDie(), cc, /*seed=*/n,
                                 config.optimizer_options.max_evaluations,
                                 20);
      auto result = engine.ValueOrDie()->Run(spec);
      if (!result.ok()) {
        std::printf("%14s", "infeas");
      } else {
        std::printf("%14.2f", result.ValueOrDie().elapsed_seconds);
      }
      std::fflush(stdout);
    }
    std::printf("%14.2f\n", setup_seconds);
  }

  std::printf(
      "\n(setup = one-off similarity matrix + PCSA signature build per "
      "universe; the per-iteration cost the user experiences is the "
      "constraint columns)\n");
  return 0;
}
