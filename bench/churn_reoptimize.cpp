// Warm-started re-optimization under source churn (src/dynamic).
//
// Protocol, per churn level f ∈ {1%, 5%, 10%, 20%}:
//   1. Generate the §7.1 workload, solve once with the full budget
//      (the "previous solution" a live deployment would hold).
//   2. Apply a mixed churn batch touching ~f·N sources: removals, new
//      sources, re-crawled tuple sets, and attribute renames, generated
//      deterministically from the churn seed.
//   3. WARM arm: incrementally reconcile the engine's caches
//      (Session::ApplyChurn) and re-optimize seeded from the previous
//      solution with the ReOptimizer's reduced budget (ReIterate).
//   4. COLD arm: build a fresh engine on the mutated universe (full
//      similarity matrix + signature rebuild) and solve with the full
//      budget from scratch.
//
// Reported per level: Q(S) of both arms and the warm/cold ratios of
// quality, Match(S) evaluations (the paper's dominant cost, measured as
// distinct subsets matched), and wall-clock. The claim being demonstrated:
// under modest churn (≤10%) the warm arm recovers ≥95% of the cold
// quality with ≤50% of the evaluations; past the cold-restart threshold
// the planner falls back to a cold start on its own.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/random.h"
#include "common/timer.h"
#include "core/session.h"
#include "datagen/generator.h"
#include "dynamic/churn.h"
#include "dynamic/delta_universe.h"

namespace mube {
namespace {

using bench::QuickMode;

/// Deterministic mixed churn batch touching ~`fraction` of live sources:
/// half removals, the rest split between re-crawls, renames, and fresh
/// sources joining the catalog.
std::vector<ChurnEvent> MakeChurnBatch(const Universe& universe,
                                       double fraction, uint64_t seed) {
  Rng rng(seed);
  const std::vector<uint32_t> alive = universe.AliveSourceIds();
  const size_t touched = std::max<size_t>(
      1, static_cast<size_t>(fraction * static_cast<double>(alive.size())));

  std::vector<size_t> picks =
      rng.SampleWithoutReplacement(alive.size(), touched);
  std::vector<ChurnEvent> events;
  const size_t removals = std::max<size_t>(1, touched / 2);
  const size_t updates = touched / 4;
  size_t i = 0;
  for (; i < removals && i < picks.size(); ++i) {
    events.push_back(
        ChurnEvent::RemoveSource(universe.source(alive[picks[i]]).name()));
  }
  for (; i < removals + updates && i < picks.size(); ++i) {
    const Source& source = universe.source(alive[picks[i]]);
    // A re-crawl: keep ~80% of the tuples, add some unseen ids.
    std::vector<uint64_t> tuples;
    for (uint64_t t : source.tuples()) {
      if (rng.UniformDouble() < 0.8) tuples.push_back(t);
    }
    const size_t grown = source.tuples().size() / 10 + 1;
    for (size_t g = 0; g < grown; ++g) {
      tuples.push_back((uint64_t{0xC0FFEE} << 32) | rng.Uniform(1u << 30));
    }
    events.push_back(ChurnEvent::UpdateTuples(source.name(), tuples));
  }
  for (; i < picks.size(); ++i) {
    const Source& source = universe.source(alive[picks[i]]);
    if (rng.Bernoulli(0.5) && source.attribute_count() > 0) {
      const uint32_t attr =
          static_cast<uint32_t>(rng.Uniform(source.attribute_count()));
      events.push_back(ChurnEvent::RenameAttribute(
          source.name(), attr,
          source.attribute(attr).name + " v2"));
    } else {
      // A fresh source modeled on an existing one's schema.
      Source fresh(0, "churned_" + std::to_string(seed) + "_" +
                          std::to_string(i) + ".com");
      for (const Attribute& attr : source.attributes()) {
        fresh.AddAttribute(Attribute(attr.name, attr.concept_id));
      }
      std::vector<uint64_t> tuples;
      const size_t count = std::max<size_t>(10, source.tuples().size() / 2);
      for (size_t t = 0; t < count; ++t) {
        tuples.push_back((uint64_t{0xFEED} << 40) | rng.Uniform(1u << 30));
      }
      fresh.SetTuples(std::move(tuples));
      fresh.characteristics().Set("mttf", 80.0 + rng.UniformDouble() * 60.0);
      events.push_back(ChurnEvent::AddSource(std::move(fresh)));
    }
  }
  return events;
}

int Main() {
  const size_t num_sources = QuickMode() ? 120 : 300;
  const size_t num_chosen = 15;
  const uint64_t universe_seed = 42;
  const std::vector<double> churn_levels = {0.01, 0.05, 0.10, 0.20};

  std::printf(
      "Warm-started re-optimization vs from-scratch under source churn\n"
      "universe: %zu sources (books), m = %zu, tabu search\n"
      "expectation: warm/cold Q >= 0.95 and warm/cold evals <= 0.5 for "
      "churn <= 10%%\n\n",
      num_sources, num_chosen);
  bench::PrintHeader({"churn", "Q cold", "Q warm", "Q ratio", "ev cold",
                      "ev warm", "ev ratio", "s cold", "s warm"});

  bool acceptance_ok = true;
  for (double fraction : churn_levels) {
    // --- shared setup: the pre-churn deployment ----------------------------
    GeneratedUniverse generated =
        GenerateUniverse(bench::PaperWorkload(num_sources, universe_seed))
            .ValueOrDie();
    MubeConfig config = bench::BenchConfig(num_sources, num_chosen);
    DeltaUniverse catalog(std::move(generated.universe));
    auto session = Session::Create(&catalog, config).ValueOrDie();
    MubeResult previous = session->Iterate().ValueOrDie();

    const std::vector<ChurnEvent> batch = MakeChurnBatch(
        catalog.universe(), fraction,
        /*seed=*/1000 + static_cast<uint64_t>(fraction * 1000));

    // --- WARM arm: incremental maintenance + seeded re-optimization -------
    WallTimer warm_timer;
    Status churn_status = session->ApplyChurn(batch);
    if (!churn_status.ok()) {
      std::fprintf(stderr, "churn failed: %s\n",
                   churn_status.ToString().c_str());
      return 1;
    }
    MubeResult warm = session->ReIterate().ValueOrDie();
    const double warm_seconds = warm_timer.ElapsedSeconds();

    // --- COLD arm: fresh engine on the mutated universe, full budget -------
    WallTimer cold_timer;
    auto cold_engine =
        Mube::Create(&catalog.universe(), config).ValueOrDie();
    RunSpec cold_spec;
    cold_spec.seed = config.optimizer_options.seed;
    MubeResult cold = cold_engine->Run(cold_spec).ValueOrDie();
    const double cold_seconds = cold_timer.ElapsedSeconds();

    const double q_ratio =
        cold.solution.overall > 0.0
            ? warm.solution.overall / cold.solution.overall
            : 1.0;
    const double eval_ratio =
        cold.distinct_subsets_matched > 0
            ? static_cast<double>(warm.distinct_subsets_matched) /
                  static_cast<double>(cold.distinct_subsets_matched)
            : 1.0;
    std::printf("%13.0f%%%14.4f%14.4f%14.3f%14zu%14zu%14.3f%14.2f%14.2f\n",
                fraction * 100.0, cold.solution.overall,
                warm.solution.overall, q_ratio, cold.distinct_subsets_matched,
                warm.distinct_subsets_matched, eval_ratio, cold_seconds,
                warm_seconds);
    if (fraction <= 0.10 && (q_ratio < 0.95 || eval_ratio > 0.5)) {
      acceptance_ok = false;
    }
  }

  std::printf(
      "\n%s: warm restarts %s the >=0.95x quality at <=0.5x evaluations "
      "bar for churn <= 10%%\n",
      acceptance_ok ? "PASS" : "FAIL", acceptance_ok ? "meet" : "miss");
  return acceptance_ok ? 0 : 1;
}

}  // namespace
}  // namespace mube

int main() { return mube::Main(); }
