// Chaos harness for the resilient serving path (src/serving +
// src/reliability): fault storms, catalog churn, and admission overload
// thrown at one MubeService, with the resilience claims enforced by exit
// code.
//
// Two phases:
//   A. Deterministic shed/degrade wave. A service with an *injected* clock
//      and a paused dispatcher stages a mixed Refine/Execute wave spanning
//      three tenants (weights 2/1/1): no-deadline work, deadlines that the
//      staged clock advance expires in the queue, and deadlines left with
//      a budget below the degrade threshold. The clock jumps, the
//      dispatcher resumes, and every per-request outcome (status class,
//      degraded flag, dispatch sequence) is recorded. The whole wave runs
//      twice from scratch; the outcome transcripts must be bit-identical.
//      The same wave checks the weighted-fair starvation bound: the light
//      tenant's i-th request must dispatch within i * (sum of weights)
//      slots of the global order.
//   B. Wall-clock chaos storm. A generated catalog with a fault schedule
//      (hard-down sources, transient failures, latency tails) serves
//      closed-loop clients issuing mixed Refine/Execute traffic with
//      deadlines, while an adversary floods one quota-limited tenant with
//      open-loop submits and a writer publishes churn batches. Breakers
//      trip and persist across the epochs the storm publishes; persistent
//      failures feed churn back through the service's own ApplyChurn.
//
// Exit-code SLOs:
//   1. every admitted future is fulfilled (nothing hangs, nothing leaks);
//   2. zero post-deadline dispatches (expired work is shed, never run);
//   3. per-tenant starvation bound under the weighted-fair dispatcher;
//   4. shed/degrade decisions are deterministic at a fixed seed;
//   5. the quota clamps the adversary without touching polite tenants;
//   6. one live epoch after the storm drains (leases reclaimed).

#include <atomic>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/random.h"
#include "common/threading.h"
#include "datagen/generator.h"
#include "dynamic/churn.h"
#include "metrics/metrics.h"
#include "reliability/fault_injector.h"
#include "serving/service.h"

namespace mube {
namespace {

using bench::PrintHeader;
using bench::QuickMode;

struct StormShape {
  size_t num_sources;
  size_t num_tenants;
  size_t num_clients;
  size_t requests_per_client;
  size_t adversary_submits;
  size_t churn_batches;
  size_t max_evaluations;
};

StormShape Shape() {
  if (QuickMode()) {
    return StormShape{30, 8, 4, 25, 120, 3, 150};
  }
  return StormShape{80, 16, 6, 60, 360, 5, 250};
}

MubeConfig StormConfig(size_t max_evaluations) {
  MubeConfig config = MubeConfig::PaperDefaults();
  config.max_sources = 6;
  config.optimizer_options.max_evaluations = max_evaluations;
  config.optimizer_options.seed = 1;
  config.pcsa.num_maps = 64;
  return config;
}

// ------------------------------------------------ A. deterministic wave --

/// One staged request's observable resilience outcome. `kind` is
/// 'R'/'X' (refine/execute); `fate` is 's'erved, 'd'egraded, or 'e'xpired
/// (shed or serve-point deadline); dispatch_sequence pins the fair order.
std::string OutcomeKey(char kind, const Status& status, bool degraded,
                       uint64_t sequence) {
  const char fate = status.ok() ? (degraded ? 'd' : 's')
                    : status.code() == StatusCode::kDeadlineExceeded
                        ? 'e'
                        : '?';
  return std::string(1, kind) + fate + ":" + std::to_string(sequence);
}

struct WaveResult {
  std::vector<std::string> transcript;  // one OutcomeKey per staged request
  std::vector<uint64_t> light_sequences;
  /// Smallest dispatch sequence in the wave, minus one: the incumbent
  /// seeding before the wave consumes global sequence numbers, so fairness
  /// bounds are relative to the wave's own first dispatch.
  uint64_t base_sequence = 0;
  uint64_t expired_in_queue = 0;
  uint64_t degraded_serves = 0;
  uint64_t post_deadline_dispatches = 0;
  bool all_fulfilled = true;
};

/// Stages the wave behind a paused dispatcher, advances the injected
/// clock, releases, and transcribes every outcome. Deterministic by
/// construction: the staged queue state and the clock are the only inputs
/// to shed/degrade, and dispatch order is weighted round-robin over them.
WaveResult RunWave(const Universe& universe, uint64_t seed) {
  std::atomic<double> clock{0.0};
  MetricsRegistry registry;
  ServiceOptions options;
  options.queue_capacity = 64;
  options.max_batch = 32;
  options.worker_threads = 2;
  options.degrade_threshold_ms = 50.0;
  options.clock_ms = [&clock] { return clock.load(); };
  std::unique_ptr<MubeService> service =
      MubeService::Create(universe, StormConfig(Shape().max_evaluations),
                          options, &registry)
          .ValueOrDie();
  Tenant* heavy = service->RegisterTenant("heavy").ValueOrDie();
  MUBE_CHECK(heavy->SetDispatchWeight(2).ok());
  service->RegisterTenant("light").ValueOrDie();
  service->RegisterTenant("zz-edge").ValueOrDie();

  // Seed incumbents + cached reports so degraded serves have something to
  // fall back to.
  for (const char* tenant : {"heavy", "light", "zz-edge"}) {
    RefineRequest refine;
    refine.tenant = tenant;
    refine.seed = seed;
    MUBE_CHECK(service->Refine(refine).status.ok());
    ExecuteRequest execute;
    execute.tenant = tenant;
    MUBE_CHECK(service->Execute(execute).status.ok());
  }

  service->PauseDispatch();
  std::vector<char> kinds;
  std::vector<ResponseFuture> refines;
  std::vector<ExecuteFuture> executes;
  std::vector<int> slots;  // index into refines/executes, parallel to kinds
  auto stage_refine = [&](const char* tenant, double deadline_ms,
                          uint64_t request_seed) {
    RefineRequest request;
    request.tenant = tenant;
    request.seed = request_seed;
    request.deadline_ms = deadline_ms;
    refines.push_back(service->Submit(request).ValueOrDie());
    kinds.push_back('R');
    slots.push_back(static_cast<int>(refines.size()) - 1);
  };
  auto stage_execute = [&](const char* tenant, double deadline_ms) {
    ExecuteRequest request;
    request.tenant = tenant;
    request.deadline_ms = deadline_ms;
    executes.push_back(service->SubmitExecute(request).ValueOrDie());
    kinds.push_back('X');
    slots.push_back(static_cast<int>(executes.size()) - 1);
  };

  // heavy floods; light trickles; zz-edge carries the deadline traffic:
  // 100ms deadlines survive the +70ms jump with 30ms < the 50ms threshold
  // (degrade), 40/30ms deadlines expire in the queue (shed).
  for (uint64_t i = 0; i < 6; ++i) stage_refine("heavy", 0.0, seed + i);
  stage_refine("light", 0.0, seed + 11);
  stage_refine("light", 0.0, seed + 12);
  stage_refine("zz-edge", 100.0, seed + 21);
  stage_execute("zz-edge", 100.0);
  stage_refine("zz-edge", 40.0, seed + 22);
  stage_execute("zz-edge", 30.0);
  clock.store(70.0);
  service->ResumeDispatch();
  service->Drain();

  WaveResult result;
  uint64_t min_sequence = 0;
  auto note_sequence = [&min_sequence](uint64_t sequence) {
    if (sequence > 0 && (min_sequence == 0 || sequence < min_sequence)) {
      min_sequence = sequence;
    }
  };
  size_t refine_cursor = 0;
  for (size_t i = 0; i < kinds.size(); ++i) {
    if (kinds[i] == 'R') {
      std::optional<RefineResponse> response =
          refines[slots[i]].WaitFor(60.0);
      if (!response.has_value()) {
        result.all_fulfilled = false;
        continue;
      }
      result.transcript.push_back(OutcomeKey('R', response->status,
                                             response->degraded,
                                             response->dispatch_sequence));
      note_sequence(response->dispatch_sequence);
      ++refine_cursor;
      if (refine_cursor == 7 || refine_cursor == 8) {  // the light pair
        result.light_sequences.push_back(response->dispatch_sequence);
      }
    } else {
      std::optional<ExecuteResponse> response =
          executes[slots[i]].WaitFor(60.0);
      if (!response.has_value()) {
        result.all_fulfilled = false;
        continue;
      }
      result.transcript.push_back(OutcomeKey('X', response->status,
                                             response->degraded,
                                             response->dispatch_sequence));
      note_sequence(response->dispatch_sequence);
    }
  }
  result.base_sequence = min_sequence > 0 ? min_sequence - 1 : 0;
  result.expired_in_queue =
      registry.GetCounter("serving_deadline_expired_in_queue_total")->Value();
  result.degraded_serves =
      registry.GetCounter("serving_degraded_serves_total")->Value();
  result.post_deadline_dispatches =
      registry.GetCounter("serving_post_deadline_dispatch_total")->Value();
  return result;
}

// ------------------------------------------------------ B. chaos storm --

struct StormResult {
  size_t refine_ok = 0;
  size_t execute_ok = 0;
  size_t deadline_shed = 0;
  size_t degraded = 0;
  size_t failed_precondition = 0;
  size_t rejected_unavailable = 0;
  size_t unexpected = 0;
  size_t unfulfilled = 0;
  size_t adversary_quota_rejections = 0;
  size_t adversary_admitted = 0;
};

void CountRefine(const std::optional<RefineResponse>& response,
                 StormResult* result, Mutex* mu) {
  MutexLock lock(mu);
  if (!response.has_value()) {
    ++result->unfulfilled;
  } else if (response->status.ok()) {
    ++result->refine_ok;
    if (response->degraded) ++result->degraded;
  } else if (response->status.code() == StatusCode::kDeadlineExceeded) {
    ++result->deadline_shed;
  } else {
    ++result->unexpected;
  }
}

void CountExecute(const std::optional<ExecuteResponse>& response,
                  StormResult* result, Mutex* mu) {
  MutexLock lock(mu);
  if (!response.has_value()) {
    ++result->unfulfilled;
  } else if (response->status.ok()) {
    ++result->execute_ok;
    if (response->degraded) ++result->degraded;
  } else if (response->status.code() == StatusCode::kDeadlineExceeded) {
    ++result->deadline_shed;
  } else if (response->status.code() == StatusCode::kFailedPrecondition) {
    // Persistent-failure churn can retire a tenant's whole incumbent
    // mid-storm; the next Execute then has nothing to run. Legitimate.
    ++result->failed_precondition;
  } else {
    ++result->unexpected;
  }
}

/// A storm-sized fault schedule: two sources hard-down (breaker + churn
/// fodder), a band of flaky sources, and a band of slow ones.
void InstallFaultStorm(FaultInjector* faults, size_t num_sources) {
  for (size_t sid = 0; sid < num_sources; ++sid) {
    FaultProfile profile;
    if (sid < 2) {
      profile.hard_down = true;
    } else if (sid < num_sources / 3) {
      profile.transient_failure_prob = 0.30;
      profile.extra_latency_ms = 10.0;
    } else if (sid < num_sources / 2) {
      profile.extra_latency_ms = 40.0;
      profile.slow_tail_prob = 0.2;
      profile.slow_tail_scale = 4.0;
    } else {
      continue;  // healthy
    }
    faults->SetProfile(static_cast<uint32_t>(sid), profile);
  }
}

StormResult RunStorm(MubeService* service, const StormShape& shape) {
  StormResult result;
  Mutex mu;

  // Closed-loop polite clients: mixed Refine/Execute with deadlines wide
  // enough to normally pass but tight enough that overload can shed them.
  std::vector<std::thread> clients;
  for (size_t c = 0; c < shape.num_clients; ++c) {
    clients.emplace_back([&, c] {
      Rng rng(0xCAFE + c);
      for (size_t i = 0; i < shape.requests_per_client; ++i) {
        const std::string tenant =
            "tenant-" +
            std::to_string(rng.Uniform(
                static_cast<uint32_t>(shape.num_tenants)));
        if (i % 4 == 3) {
          ExecuteRequest request;
          request.tenant = tenant;
          request.deadline_ms = 4000.0;
          Result<ExecuteFuture> submitted =
              service->SubmitExecute(std::move(request));
          if (!submitted.ok()) {
            MutexLock lock(&mu);
            ++result.rejected_unavailable;
            continue;
          }
          CountExecute(submitted.ValueOrDie().WaitFor(60.0), &result, &mu);
        } else {
          RefineRequest request;
          request.tenant = tenant;
          request.seed = 1 + (c * shape.requests_per_client + i) % 32;
          request.deadline_ms = 4000.0;
          Result<ResponseFuture> submitted = service->Submit(request);
          if (!submitted.ok()) {
            MutexLock lock(&mu);
            ++result.rejected_unavailable;
            continue;
          }
          CountRefine(submitted.ValueOrDie().WaitFor(60.0), &result, &mu);
        }
      }
    });
  }

  // Open-loop adversary: floods its own tenant far past the quota and only
  // collects the futures afterwards. The quota must clamp it here, at
  // admission, without denting anyone above.
  std::thread adversary([&] {
    std::vector<ResponseFuture> futures;
    for (size_t i = 0; i < shape.adversary_submits; ++i) {
      RefineRequest request;
      request.tenant = "adversary";
      request.seed = 1 + i % 16;
      Result<ResponseFuture> submitted = service->Submit(request);
      if (submitted.ok()) {
        futures.push_back(submitted.MoveValueUnsafe());
      } else if (submitted.status().IsResourceExhausted()) {
        MutexLock lock(&mu);
        ++result.adversary_quota_rejections;
      } else {
        MutexLock lock(&mu);
        ++result.rejected_unavailable;
      }
    }
    {
      MutexLock lock(&mu);
      result.adversary_admitted = futures.size();
    }
    for (const ResponseFuture& future : futures) {
      CountRefine(future.WaitFor(60.0), &result, &mu);
    }
  });

  // Writer: background catalog churn (re-crawls only — removals arrive
  // organically via the persistent-failure path).
  std::thread writer([&] {
    Rng rng(0xD00D);
    for (size_t round = 0; round < shape.churn_batches; ++round) {
      std::vector<ChurnEvent> batch;
      {
        SnapshotManager::Lease lease = service->snapshots().Acquire();
        const std::vector<uint32_t> alive =
            lease.universe().AliveSourceIds();
        const Source& crawled = lease.universe().source(
            alive[rng.Uniform(static_cast<uint32_t>(alive.size()))]);
        std::vector<uint64_t> tuples(crawled.tuples().begin(),
                                     crawled.tuples().end());
        tuples.push_back((uint64_t{0xFEED} << 32) | rng.Uniform(1u << 30));
        batch.push_back(ChurnEvent::UpdateTuples(crawled.name(), tuples));
      }
      // Racing the persistent-failure churn can legitimately fail the
      // batch (all-or-nothing); the storm only cares that it never wedges.
      (void)service->ApplyChurn(batch);
    }
  });

  for (std::thread& client : clients) client.join();
  adversary.join();
  writer.join();
  service->Drain();
  return result;
}

int Main() {
  const StormShape shape = Shape();
  std::printf(
      "µBE chaos serving: %zu tenants, %zu clients x %zu requests, "
      "adversary x%zu, %zu churn batches, %zu sources%s\n\n",
      shape.num_tenants, shape.num_clients, shape.requests_per_client,
      shape.adversary_submits, shape.churn_batches, shape.num_sources,
      QuickMode() ? " (quick)" : "");

  GeneratedUniverse generated =
      GenerateUniverse(bench::PaperWorkload(shape.num_sources, 42))
          .ValueOrDie();

  // -------------------------------------------- A. deterministic wave --
  const WaveResult wave_a = RunWave(generated.universe, 7);
  const WaveResult wave_b = RunWave(generated.universe, 7);
  std::printf("wave transcript (%zu staged requests):\n ",
              wave_a.transcript.size());
  for (const std::string& key : wave_a.transcript) {
    std::printf(" %s", key.c_str());
  }
  std::printf("\n  expired-in-queue %llu, degraded %llu\n\n",
              static_cast<unsigned long long>(wave_a.expired_in_queue),
              static_cast<unsigned long long>(wave_a.degraded_serves));

  constexpr uint64_t kWeightCycle = 2 + 1 + 1;  // heavy + light + zz-edge
  bool starvation_bounded = wave_a.light_sequences.size() == 2;
  for (size_t i = 0; i < wave_a.light_sequences.size(); ++i) {
    if (wave_a.light_sequences[i] <= wave_a.base_sequence ||
        wave_a.light_sequences[i] - wave_a.base_sequence >
            (i + 1) * kWeightCycle) {
      starvation_bounded = false;
    }
  }

  // ---------------------------------------------------- B. chaos storm --
  FaultInjector faults(1337);
  InstallFaultStorm(&faults, generated.universe.size());
  MetricsRegistry registry;
  ServiceOptions options;
  options.queue_capacity = 1024;
  options.max_batch = 16;
  options.per_tenant_quota = 8;
  options.degrade_threshold_ms = 5.0;
  options.fault_injector = &faults;
  options.reliability.persistent_failure_threshold = 4;
  options.reliability.breaker.min_samples = 4;
  std::unique_ptr<MubeService> service =
      MubeService::Create(generated.universe,
                          StormConfig(shape.max_evaluations), options,
                          &registry)
          .ValueOrDie();
  for (size_t t = 0; t < shape.num_tenants; ++t) {
    service->RegisterTenant("tenant-" + std::to_string(t)).ValueOrDie();
  }
  service->RegisterTenant("adversary").ValueOrDie();
  // Seed every tenant's incumbent so Executes have something to run.
  for (size_t t = 0; t < shape.num_tenants; ++t) {
    RefineRequest request;
    request.tenant = "tenant-" + std::to_string(t);
    request.seed = 5 + t;
    MUBE_CHECK(service->Refine(request).status.ok());
  }

  WallTimer storm_wall;
  const StormResult storm = RunStorm(service.get(), shape);
  const double storm_seconds = storm_wall.ElapsedSeconds();
  const uint64_t published = service->snapshots().published_count();
  service->Drain();
  const size_t live_epochs = service->snapshots().live_epoch_count();

  auto metric = [&registry](const char* name) {
    return static_cast<unsigned long long>(
        registry.GetCounter(name)->Value());
  };
  PrintHeader({"outcome", "count"});
  auto row = [](const char* label, size_t count) {
    std::printf("%14s%14zu\n", label, count);
  };
  row("refine ok", storm.refine_ok);
  row("execute ok", storm.execute_ok);
  row("degraded", storm.degraded);
  row("deadline shed", storm.deadline_shed);
  row("no incumbent", storm.failed_precondition);
  row("unavailable", storm.rejected_unavailable);
  row("quota clamp", storm.adversary_quota_rejections);
  row("unexpected", storm.unexpected);
  std::printf(
      "\nstorm: %.1fs, %llu epochs published, breakers opened %llu / "
      "half-opened %llu / closed %llu, persistent-failure churn %llu, "
      "executes %llu, shed-in-queue %llu, degraded %llu\n",
      storm_seconds, static_cast<unsigned long long>(published),
      metric("serving_breaker_opens_total"),
      metric("serving_breaker_half_opens_total"),
      metric("serving_breaker_closes_total"),
      metric("serving_persistent_failure_churn_total"),
      metric("serving_executes_total"),
      metric("serving_deadline_expired_in_queue_total"),
      metric("serving_degraded_serves_total"));

  // ------------------------------------------------------------ the bars --
  bool ok = true;
  auto bar = [&ok](bool passed, const char* what) {
    std::printf("%s  %s\n", passed ? "PASS" : "FAIL", what);
    ok = ok && passed;
  };
  std::printf("\n");
  bar(wave_a.all_fulfilled && wave_b.all_fulfilled &&
          storm.unfulfilled == 0,
      "every admitted future was fulfilled (wave + storm)");
  bar(wave_a.post_deadline_dispatches == 0 &&
          metric("serving_post_deadline_dispatch_total") == 0,
      "zero post-deadline dispatches");
  bar(starvation_bounded,
      "light tenant dispatched within its weighted-fair bound");
  bar(wave_a.transcript == wave_b.transcript &&
          wave_a.expired_in_queue == wave_b.expired_in_queue &&
          wave_a.degraded_serves == wave_b.degraded_serves &&
          wave_a.expired_in_queue == 2 && wave_a.degraded_serves == 2,
      "shed/degrade decisions replay bit-identically at a fixed seed");
  bar(storm.adversary_quota_rejections > 0 && storm.unexpected == 0,
      "quota clamps the adversary; every other outcome is a defined class");
  bar(live_epochs == 1,
      "one live epoch after the storm drains (leases reclaimed)");
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace mube

int main() { return mube::Main(); }
