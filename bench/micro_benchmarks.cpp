// Google-benchmark microbenches for the µBE hot paths: the pairwise
// similarity kernel, similarity-matrix construction, Match(S) clustering,
// PCSA updates/merges/estimates, and whole-solution evaluation. These are
// the costs that determine whether the interactive loop of §6 stays in the
// "minutes" envelope the paper targets.

#include <benchmark/benchmark.h>

#include "common/random.h"
#include "datagen/generator.h"
#include "exec/executor.h"
#include "match/matcher.h"
#include "qef/match_qef.h"
#include "sketch/pcsa.h"
#include "sketch/signature_cache.h"
#include "text/similarity.h"
#include "text/similarity_matrix.h"

namespace mube {
namespace {

const GeneratedUniverse& SharedUniverse() {
  static const GeneratedUniverse* const kGenerated = [] {
    GeneratorConfig config;
    config.num_sources = 200;
    config.min_cardinality = 1'000;
    config.max_cardinality = 20'000;
    config.tuple_pool_size = 100'000;
    config.specialty_tuples_min = 10;
    config.specialty_tuples_max = 100;
    auto result = GenerateUniverse(config);
    return new GeneratedUniverse(  // NOLINT(naked-new): leaky singleton
        std::move(result).ValueOrDie());
  }();
  return *kGenerated;
}

void BM_JaccardSimilarity(benchmark::State& state) {
  NGramJaccard jaccard(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        jaccard.Similarity("publication year", "publication date"));
  }
}
BENCHMARK(BM_JaccardSimilarity);

void BM_JaccardPreparedTokens(benchmark::State& state) {
  NGramJaccard jaccard(3);
  const auto a = jaccard.PrepareTokens("publication year");
  const auto b = jaccard.PrepareTokens("publication date");
  for (auto _ : state) {
    benchmark::DoNotOptimize(jaccard.SimilarityFromTokens(a, b));
  }
}
BENCHMARK(BM_JaccardPreparedTokens);

void BM_SimilarityMatrixBuild(benchmark::State& state) {
  const Universe& universe = SharedUniverse().universe;
  NGramJaccard jaccard(3);
  for (auto _ : state) {
    SimilarityMatrix matrix(universe, jaccard);
    benchmark::DoNotOptimize(matrix.attribute_count());
  }
  state.SetLabel(std::to_string(universe.total_attribute_count()) +
                 " attributes");
}
BENCHMARK(BM_SimilarityMatrixBuild)->Unit(benchmark::kMillisecond);

void BM_MatchSubset(benchmark::State& state) {
  const Universe& universe = SharedUniverse().universe;
  static const NGramJaccard jaccard(3);
  static const SimilarityMatrix* const matrix =
      new SimilarityMatrix(universe, jaccard);
  Matcher matcher(universe, *matrix);
  MatchOptions options;
  options.theta = 0.75;

  Rng rng(7);
  const size_t m = static_cast<size_t>(state.range(0));
  std::vector<std::vector<uint32_t>> subsets;
  for (int i = 0; i < 64; ++i) {
    std::vector<uint32_t> subset;
    for (size_t p : rng.SampleWithoutReplacement(universe.size(), m)) {
      subset.push_back(static_cast<uint32_t>(p));
    }
    subsets.push_back(std::move(subset));
  }
  size_t i = 0;
  for (auto _ : state) {
    auto result = matcher.Match(subsets[i++ % subsets.size()], options);
    benchmark::DoNotOptimize(result.ok());
  }
}
BENCHMARK(BM_MatchSubset)->Arg(10)->Arg(20)->Arg(50)
    ->Unit(benchmark::kMicrosecond);

void BM_PcsaAdd(benchmark::State& state) {
  PcsaSketch sketch;
  uint64_t i = 0;
  for (auto _ : state) {
    sketch.Add(i++ * 0x9e3779b97f4a7c15ULL);
  }
}
BENCHMARK(BM_PcsaAdd);

void BM_PcsaMergeAndEstimate(benchmark::State& state) {
  PcsaSketch a, b;
  for (uint64_t i = 0; i < 100'000; ++i) {
    a.Add(i * 3);
    b.Add(i * 5);
  }
  for (auto _ : state) {
    PcsaSketch merged = a;
    benchmark::DoNotOptimize(merged.MergeFrom(b).ok());
    benchmark::DoNotOptimize(merged.Estimate());
  }
}
BENCHMARK(BM_PcsaMergeAndEstimate);

void BM_UnionEstimate20Sources(benchmark::State& state) {
  const GeneratedUniverse& generated = SharedUniverse();
  static const SignatureCache* const cache =
      new SignatureCache(generated.universe, PcsaConfig());
  Rng rng(13);
  for (auto _ : state) {
    state.PauseTiming();
    std::vector<uint32_t> subset;
    for (size_t p :
         rng.SampleWithoutReplacement(generated.universe.size(), 20)) {
      subset.push_back(static_cast<uint32_t>(p));
    }
    state.ResumeTiming();
    benchmark::DoNotOptimize(cache->EstimateUnion(subset));
  }
}
BENCHMARK(BM_UnionEstimate20Sources)->Unit(benchmark::kMicrosecond);

void BM_MatchQefMemoHit(benchmark::State& state) {
  const Universe& universe = SharedUniverse().universe;
  static const NGramJaccard jaccard(3);
  static const SimilarityMatrix* const matrix =
      new SimilarityMatrix(universe, jaccard);
  Matcher matcher(universe, *matrix);
  MatchOptions options;
  options.theta = 0.75;
  MatchQualityQef qef(matcher, options, {}, MediatedSchema());
  std::vector<uint32_t> subset;
  for (uint32_t i = 0; i < 20; ++i) subset.push_back(i * 7);
  qef.Evaluate(subset);  // warm the cache
  for (auto _ : state) {
    benchmark::DoNotOptimize(qef.Evaluate(subset));
  }
}
BENCHMARK(BM_MatchQefMemoHit);

void BM_SimilarityMatrixBuildParallel(benchmark::State& state) {
  const Universe& universe = SharedUniverse().universe;
  NGramJaccard jaccard(3);
  const unsigned threads = static_cast<unsigned>(state.range(0));
  for (auto _ : state) {
    SimilarityMatrix matrix(universe, jaccard, threads);
    benchmark::DoNotOptimize(matrix.attribute_count());
  }
}
BENCHMARK(BM_SimilarityMatrixBuildParallel)->Arg(1)->Arg(4)->Arg(0)
    ->Unit(benchmark::kMillisecond);

void BM_MediatedQueryScan(benchmark::State& state) {
  const GeneratedUniverse& generated = SharedUniverse();
  static const NGramJaccard jaccard(3);
  static const SimilarityMatrix* const matrix =
      new SimilarityMatrix(generated.universe, jaccard);
  Matcher matcher(generated.universe, *matrix);
  std::vector<uint32_t> subset;
  for (uint32_t i = 0; i < 20; ++i) subset.push_back(i * 7);
  auto match = matcher.Match(subset, MatchOptions());
  MediatedExecutor exec(generated.universe, subset,
                        match.ValueOrDie().schema);
  Query point;
  point.predicates = {{0, CompareOp::kEq, 7}};
  for (auto _ : state) {
    auto result = exec.Execute(point);
    benchmark::DoNotOptimize(result.ok());
  }
}
BENCHMARK(BM_MediatedQueryScan)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace mube

BENCHMARK_MAIN();
