// Google-benchmark microbenches for the µBE hot paths: the pairwise
// similarity kernel, similarity-matrix construction, Match(S) clustering,
// PCSA updates/merges/estimates, and whole-solution evaluation. These are
// the costs that determine whether the interactive loop of §6 stays in the
// "minutes" envelope the paper targets.
//
// Before the benchmarks run, main() executes the raw-speed GATE: exit-code-
// enforced speedup bars for the vectorized kernels of sketch/simd.h against
// the retained reference-scalar mode, with bit-identical-output assertions,
// writing BENCH_raw_speed.json. `--raw_speed_gate_only` runs just the gate
// (the CI raw-speed-smoke job). MUBE_BENCH_QUICK=1 scales the bars down for
// shared runners; a -DMUBE_SIMD=off build verifies bit-identity only (both
// paths are then the same scalar code, so a speedup bar would be
// meaningless).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <bit>
#include <cstdio>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "bench/bench_util.h"
#include "common/logging.h"
#include "common/random.h"
#include "common/timer.h"
#include "datagen/generator.h"
#include "exec/executor.h"
#include "match/matcher.h"
#include "qef/match_qef.h"
#include "sketch/pcsa.h"
#include "sketch/signature_cache.h"
#include "sketch/simd.h"
#include "text/ngram.h"
#include "text/similarity.h"
#include "text/similarity_matrix.h"

namespace mube {
namespace {

const GeneratedUniverse& SharedUniverse() {
  static const GeneratedUniverse* const kGenerated = [] {
    GeneratorConfig config;
    config.num_sources = 200;
    config.min_cardinality = 1'000;
    config.max_cardinality = 20'000;
    config.tuple_pool_size = 100'000;
    config.specialty_tuples_min = 10;
    config.specialty_tuples_max = 100;
    auto result = GenerateUniverse(config);
    return new GeneratedUniverse(  // NOLINT(naked-new): leaky singleton
        std::move(result).ValueOrDie());
  }();
  return *kGenerated;
}

void BM_JaccardSimilarity(benchmark::State& state) {
  NGramJaccard jaccard(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        jaccard.Similarity("publication year", "publication date"));
  }
}
BENCHMARK(BM_JaccardSimilarity);

void BM_JaccardPreparedTokens(benchmark::State& state) {
  NGramJaccard jaccard(3);
  const auto a = jaccard.PrepareTokens("publication year");
  const auto b = jaccard.PrepareTokens("publication date");
  for (auto _ : state) {
    benchmark::DoNotOptimize(jaccard.SimilarityFromTokens(a, b));
  }
}
BENCHMARK(BM_JaccardPreparedTokens);

void BM_SimilarityMatrixBuild(benchmark::State& state) {
  const Universe& universe = SharedUniverse().universe;
  NGramJaccard jaccard(3);
  for (auto _ : state) {
    SimilarityMatrix matrix(universe, jaccard);
    benchmark::DoNotOptimize(matrix.attribute_count());
  }
  state.SetLabel(std::to_string(universe.total_attribute_count()) +
                 " attributes");
}
BENCHMARK(BM_SimilarityMatrixBuild)->Unit(benchmark::kMillisecond);

void BM_MatchSubset(benchmark::State& state) {
  const Universe& universe = SharedUniverse().universe;
  static const NGramJaccard jaccard(3);
  static const SimilarityMatrix* const matrix =
      new SimilarityMatrix(universe, jaccard);
  Matcher matcher(universe, *matrix);
  MatchOptions options;
  options.theta = 0.75;

  Rng rng(7);
  const size_t m = static_cast<size_t>(state.range(0));
  std::vector<std::vector<uint32_t>> subsets;
  for (int i = 0; i < 64; ++i) {
    std::vector<uint32_t> subset;
    for (size_t p : rng.SampleWithoutReplacement(universe.size(), m)) {
      subset.push_back(static_cast<uint32_t>(p));
    }
    subsets.push_back(std::move(subset));
  }
  size_t i = 0;
  for (auto _ : state) {
    auto result = matcher.Match(subsets[i++ % subsets.size()], options);
    benchmark::DoNotOptimize(result.ok());
  }
}
BENCHMARK(BM_MatchSubset)->Arg(10)->Arg(20)->Arg(50)
    ->Unit(benchmark::kMicrosecond);

void BM_PcsaAdd(benchmark::State& state) {
  PcsaSketch sketch;
  uint64_t i = 0;
  for (auto _ : state) {
    sketch.Add(i++ * 0x9e3779b97f4a7c15ULL);
  }
}
BENCHMARK(BM_PcsaAdd);

void BM_PcsaMergeAndEstimate(benchmark::State& state) {
  PcsaSketch a, b;
  for (uint64_t i = 0; i < 100'000; ++i) {
    a.Add(i * 3);
    b.Add(i * 5);
  }
  for (auto _ : state) {
    PcsaSketch merged = a;
    benchmark::DoNotOptimize(merged.MergeFrom(b).ok());
    benchmark::DoNotOptimize(merged.Estimate());
  }
}
BENCHMARK(BM_PcsaMergeAndEstimate);

void BM_UnionEstimate20Sources(benchmark::State& state) {
  const GeneratedUniverse& generated = SharedUniverse();
  static const SignatureCache* const cache =
      new SignatureCache(generated.universe, PcsaConfig());
  Rng rng(13);
  for (auto _ : state) {
    state.PauseTiming();
    std::vector<uint32_t> subset;
    for (size_t p :
         rng.SampleWithoutReplacement(generated.universe.size(), 20)) {
      subset.push_back(static_cast<uint32_t>(p));
    }
    state.ResumeTiming();
    benchmark::DoNotOptimize(cache->EstimateUnion(subset));
  }
}
BENCHMARK(BM_UnionEstimate20Sources)->Unit(benchmark::kMicrosecond);

void BM_MatchQefMemoHit(benchmark::State& state) {
  const Universe& universe = SharedUniverse().universe;
  static const NGramJaccard jaccard(3);
  static const SimilarityMatrix* const matrix =
      new SimilarityMatrix(universe, jaccard);
  Matcher matcher(universe, *matrix);
  MatchOptions options;
  options.theta = 0.75;
  MatchQualityQef qef(matcher, options, {}, MediatedSchema());
  std::vector<uint32_t> subset;
  for (uint32_t i = 0; i < 20; ++i) subset.push_back(i * 7);
  qef.Evaluate(subset);  // warm the cache
  for (auto _ : state) {
    benchmark::DoNotOptimize(qef.Evaluate(subset));
  }
}
BENCHMARK(BM_MatchQefMemoHit);

void BM_SimilarityMatrixBuildParallel(benchmark::State& state) {
  const Universe& universe = SharedUniverse().universe;
  NGramJaccard jaccard(3);
  const unsigned threads = static_cast<unsigned>(state.range(0));
  for (auto _ : state) {
    SimilarityMatrix matrix(universe, jaccard, threads);
    benchmark::DoNotOptimize(matrix.attribute_count());
  }
}
BENCHMARK(BM_SimilarityMatrixBuildParallel)->Arg(1)->Arg(4)->Arg(0)
    ->Unit(benchmark::kMillisecond);

void BM_MediatedQueryScan(benchmark::State& state) {
  const GeneratedUniverse& generated = SharedUniverse();
  static const NGramJaccard jaccard(3);
  static const SimilarityMatrix* const matrix =
      new SimilarityMatrix(generated.universe, jaccard);
  Matcher matcher(generated.universe, *matrix);
  std::vector<uint32_t> subset;
  for (uint32_t i = 0; i < 20; ++i) subset.push_back(i * 7);
  auto match = matcher.Match(subset, MatchOptions());
  MediatedExecutor exec(generated.universe, subset,
                        match.ValueOrDie().schema);
  Query point;
  point.predicates = {{0, CompareOp::kEq, 7}};
  for (auto _ : state) {
    auto result = exec.Execute(point);
    benchmark::DoNotOptimize(result.ok());
  }
}
BENCHMARK(BM_MediatedQueryScan)->Unit(benchmark::kMicrosecond);

// ---------------------------------------------------------------------------
// Raw-speed gate
// ---------------------------------------------------------------------------

struct GateSection {
  const char* name;
  double ref_ms = 0.0;
  double opt_ms = 0.0;
  double speedup = 0.0;
  double bar = 0.0;        // required speedup (0 when not enforced)
  bool bar_enforced = true;
  bool bit_identical = false;
  bool pass = false;
};

/// Best-of-N timing: the minimum is the least-noise estimator for a
/// deterministic workload on a shared machine.
template <typename Fn>
double BestMillis(int runs, Fn&& fn) {
  double best = 0.0;
  for (int r = 0; r < runs; ++r) {
    WallTimer timer;
    fn();
    const double ms = timer.ElapsedMillis();
    if (r == 0 || ms < best) best = ms;
  }
  return best;
}

/// Sketch union/estimate: the optimizer's scoring shape — many candidate
/// source subsets, each a union-cardinality estimate over signatures drawn
/// from one shared pool. Reference = the pre-fusion production path on
/// reference-scalar kernels, per subset: materialize a fresh zeroed merged
/// signature (the old code constructed a PcsaSketch per estimate), OR each
/// member in (k read-modify-write passes), then scan it for the
/// trailing-ones sum. Optimized = PcsaSketch::UnionEstimateBatch's fused,
/// cache-blocked pass (no temporaries; pool words shared across subsets are
/// read from L2 once per block).
GateSection SketchUnionGate(bool quick, bool enforce_bars) {
  GateSection section{"sketch_union_estimate"};
  section.bar = quick ? 2.0 : 4.0;
  section.bar_enforced = enforce_bars;

  const size_t kPoolSize = 24;
  const size_t kSubsets = quick ? 12 : 32;
  const size_t kMembersPerSubset = 8;
  const uint64_t kItemsPerSketch = quick ? 20'000 : 50'000;
  const int reps = quick ? 20 : 50;
  const PcsaConfig config;  // 2048 maps × 8 bytes = one 16 KB signature

  std::vector<PcsaSketch> pool(kPoolSize, PcsaSketch(config));
  std::vector<uint64_t> items(kItemsPerSketch);
  for (size_t s = 0; s < kPoolSize; ++s) {
    for (uint64_t i = 0; i < kItemsPerSketch; ++i) {
      items[i] = (s * kItemsPerSketch + i) * 0x9e3779b97f4a7c15ULL;
    }
    pool[s].AddAll(items);
  }
  Rng rng(23);
  std::vector<std::vector<const PcsaSketch*>> subsets(kSubsets);
  for (std::vector<const PcsaSketch*>& subset : subsets) {
    for (size_t s = 0; s < kMembersPerSubset; ++s) {
      subset.push_back(&pool[rng.Uniform(kPoolSize)]);
    }
  }

  const size_t words = config.num_maps;
  std::vector<double> ref_out(kSubsets, 0.0);
  const double ref_ms = BestMillis(5, [&] {
    for (int r = 0; r < reps; ++r) {
      for (size_t t = 0; t < kSubsets; ++t) {
        std::vector<uint64_t> merged(words, 0);
        for (const PcsaSketch* s : subsets[t]) {
          simd::ref::OrInto(merged.data(), s->bitmaps().data(), words);
        }
        ref_out[t] =
            simd::ref::AllZero(merged.data(), words)
                ? 0.0
                : PcsaSketch::EstimateFromTrailingOnesSum(
                      simd::ref::TrailingOnesSum(merged.data(), words),
                      config);
      }
      benchmark::DoNotOptimize(ref_out.data());
    }
  });

  std::vector<double> opt_out(kSubsets, 0.0);
  const double opt_ms = BestMillis(5, [&] {
    for (int r = 0; r < reps; ++r) {
      PcsaSketch::UnionEstimateBatch(subsets, opt_out);
      benchmark::DoNotOptimize(opt_out.data());
    }
  });

  section.ref_ms = ref_ms;
  section.opt_ms = opt_ms;
  section.speedup = opt_ms > 0.0 ? ref_ms / opt_ms : 0.0;
  section.bit_identical =
      std::memcmp(ref_out.data(), opt_out.data(),
                  kSubsets * sizeof(double)) == 0;
  section.pass = section.bit_identical &&
                 (!enforce_bars || section.speedup >= section.bar);
  return section;
}

/// Gram similarity: all-pairs Jaccard over 3-gram sets of attribute-style
/// names (multi-word, shared vocabulary — the shape the similarity matrix
/// sees after normalization). Reference = the sorted-vector linear merge on
/// the reference-scalar kernel, per pair. Optimized = the registered-gram
/// bitset path, including the per-corpus GramBitsets build in the timing
/// (that is the real cost the matrix build pays once per corpus).
GateSection GramSimilarityGate(bool quick, bool enforce_bars) {
  GateSection section{"gram_similarity"};
  section.bar = quick ? 1.5 : 3.0;
  section.bar_enforced = enforce_bars;

  static const char* const kVocab[] = {
      "publication", "year",     "date",    "title",   "author",  "isbn",
      "price",       "edition",  "format",  "binding", "list",    "name",
      "first",       "last",     "address", "city",    "country", "code",
      "postal",      "phone",    "email",   "id",      "number",  "status",
      "category",    "subject",  "keyword", "series",  "volume",  "issue",
      "page",        "count",    "total",   "amount",  "currency", "rating",
      "review",      "seller",   "vendor",  "store",   "stock",   "quantity",
      "shipping",    "delivery", "order",   "customer", "account", "language",
  };
  constexpr size_t kVocabSize = sizeof(kVocab) / sizeof(kVocab[0]);

  const size_t n = quick ? 400 : 1200;
  NGramJaccard jaccard(3);
  Rng rng(17);
  std::vector<std::vector<uint64_t>> tokens;
  tokens.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    std::string name(kVocab[rng.Uniform(kVocabSize)]);
    name += ' ';
    name += kVocab[rng.Uniform(kVocabSize)];
    name += ' ';
    name += kVocab[rng.Uniform(kVocabSize)];
    tokens.push_back(jaccard.PrepareTokens(name));
  }

  const size_t pairs = n * (n - 1) / 2;
  std::vector<double> ref_out(pairs, 0.0);
  const double ref_ms = BestMillis(3, [&] {
    size_t idx = 0;
    for (size_t i = 0; i < n; ++i) {
      const std::vector<uint64_t>& a = tokens[i];
      for (size_t j = i + 1; j < n; ++j) {
        const std::vector<uint64_t>& b = tokens[j];
        const size_t inter = simd::ref::LinearIntersectionCount(
            a.data(), a.size(), b.data(), b.size());
        ref_out[idx++] = jaccard.SimilarityFromCounts(inter, a.size(),
                                                      b.size());
      }
    }
    benchmark::DoNotOptimize(ref_out.data());
  });

  std::vector<double> opt_out(pairs, 0.0);
  const double opt_ms = BestMillis(3, [&] {
    GramBitsets bitsets(tokens);
    MUBE_CHECK(bitsets.usable());
    size_t idx = 0;
    for (size_t i = 0; i < n; ++i) {
      const size_t size_a = tokens[i].size();
      for (size_t j = i + 1; j < n; ++j) {
        opt_out[idx++] = jaccard.SimilarityFromCounts(
            bitsets.IntersectionSize(i, j), size_a, tokens[j].size());
      }
    }
    benchmark::DoNotOptimize(opt_out.data());
  });

  section.ref_ms = ref_ms;
  section.opt_ms = opt_ms;
  section.speedup = opt_ms > 0.0 ? ref_ms / opt_ms : 0.0;
  section.bit_identical =
      std::memcmp(ref_out.data(), opt_out.data(), pairs * sizeof(double)) == 0;
  section.pass = section.bit_identical &&
                 (!enforce_bars || section.speedup >= section.bar);
  return section;
}

void WriteGateJson(const std::vector<GateSection>& sections, bool quick,
                   bool enforce_bars) {
  std::FILE* f = std::fopen("BENCH_raw_speed.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "raw_speed_gate: cannot write BENCH_raw_speed.json\n");
    return;
  }
  std::fprintf(f, "{\n  \"quick\": %s,\n  \"simd_mode\": \"%s\",\n",
               quick ? "true" : "false",
               enforce_bars ? "vector" : "reference");
  std::fprintf(f, "  \"sections\": [\n");
  for (size_t i = 0; i < sections.size(); ++i) {
    const GateSection& s = sections[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"ref_ms\": %.4f, \"opt_ms\": %.4f, "
                 "\"speedup\": %.3f, \"bar\": %.2f, \"bar_enforced\": %s, "
                 "\"bit_identical\": %s, \"pass\": %s}%s\n",
                 s.name, s.ref_ms, s.opt_ms, s.speedup, s.bar,
                 s.bar_enforced ? "true" : "false",
                 s.bit_identical ? "true" : "false", s.pass ? "true" : "false",
                 i + 1 < sections.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

/// Runs all gate sections; returns 0 iff every section passed.
int RunRawSpeedGate() {
  const bool quick = bench::QuickMode();
#if defined(MUBE_SIMD_OFF)
  // Reference mode: simd::* already forwards to simd::ref::*, so a speedup
  // bar would compare the scalar code with itself. Bit-identity (trivially
  // expected, but it exercises the same assertions) is still checked.
  const bool enforce_bars = false;
#else
  const bool enforce_bars = true;
#endif

  std::vector<GateSection> sections;
  sections.push_back(SketchUnionGate(quick, enforce_bars));
  sections.push_back(GramSimilarityGate(quick, enforce_bars));
  WriteGateJson(sections, quick, enforce_bars);

  bool all_pass = true;
  std::printf("raw_speed_gate (%s%s):\n", quick ? "quick" : "full",
              enforce_bars ? "" : ", MUBE_SIMD=off: bars not enforced");
  for (const GateSection& s : sections) {
    std::printf(
        "  %-24s ref %8.3f ms  opt %8.3f ms  speedup %6.2fx  (bar %.1fx%s)  "
        "bit_identical=%s  %s\n",
        s.name, s.ref_ms, s.opt_ms, s.speedup, s.bar,
        s.bar_enforced ? "" : ", unenforced",
        s.bit_identical ? "yes" : "NO", s.pass ? "PASS" : "FAIL");
    all_pass = all_pass && s.pass;
  }
  if (!all_pass) {
    std::fprintf(stderr, "raw_speed_gate: FAILED\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace mube

int main(int argc, char** argv) {
  bool gate_only = false;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--raw_speed_gate_only") {
      gate_only = true;
    } else {
      argv[out++] = argv[i];  // strip our flag before benchmark sees it
    }
  }
  argc = out;

  const int gate_rc = mube::RunRawSpeedGate();
  if (gate_rc != 0 || gate_only) return gate_rc;

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
