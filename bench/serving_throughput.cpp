// Multi-tenant serving throughput over epoch-based COW snapshots
// (src/serving).
//
// Protocol, two phases over the same generated catalog:
//   A. Churn-free baseline: K closed-loop clients issue a fixed stream of
//      Refine requests (round-robin over the tenant pool, deterministic
//      seeds) against a quiescent catalog.
//   B. Churn interleaved: the identical request stream runs while a writer
//      publishes mixed churn batches (re-crawls, renames, new sources)
//      back-to-back — every batch clones the universe, forks the engine,
//      reconciles incrementally, and publishes a new epoch without ever
//      taking a lock readers wait on.
//
// Reported per phase: sessions/sec and end-to-end Refine latency
// (p50/p99), plus — for the churn phase — the snapshot-staleness bars and
// the engine/serving counters scraped from the shared MetricsRegistry
// (memo hit rates, measure calls, churn delta sizes, epoch build times).
//
// The exit code enforces the serving-layer claims:
//   1. every request in both phases succeeds (no rejects at this load);
//   2. churn never blocks readers: churn-phase p99 ≤ 2× baseline p99;
//   3. fixed-seed streams are deterministic per epoch: concurrent
//      observations of the same (tenant, seed, epoch) agree, and a probe
//      replayed twice at the final epoch is bit-identical;
//   4. epochs are reclaimed: one live epoch once the service drains.

#include <algorithm>
#include <cstdio>
#include <map>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "bench/bench_util.h"
#include "common/random.h"
#include "common/threading.h"
#include "common/timer.h"
#include "datagen/generator.h"
#include "dynamic/churn.h"
#include "metrics/metrics.h"
#include "serving/service.h"

namespace mube {
namespace {

using bench::PrintHeader;
using bench::QuickMode;

struct LoadShape {
  size_t num_sources;
  size_t num_tenants;
  size_t num_clients;
  size_t requests_per_client;
  size_t churn_batches;
  size_t max_evaluations;
};

LoadShape Shape() {
  if (QuickMode()) {
    return LoadShape{40, 16, 4, 30, 3, 200};
  }
  // "Thousands of concurrent requests with interleaved churn, 64 tenants."
  return LoadShape{120, 64, 12, 170, 8, 400};
}

MubeConfig ServingConfig(const LoadShape& shape) {
  MubeConfig config = MubeConfig::PaperDefaults();
  config.max_sources = 8;
  config.optimizer_options.max_evaluations = shape.max_evaluations;
  config.optimizer_options.seed = 1;
  config.pcsa.num_maps = 64;
  return config;
}

/// Mixed churn batch (no removals: keep every tenant's world answerable at
/// this bench's tiny θ-free specs): one re-crawl, one rename, one new
/// source per batch, deterministic in `round`.
std::vector<ChurnEvent> ChurnBatch(const Universe& universe, size_t round) {
  Rng rng(0xC0DE + round);
  const std::vector<uint32_t> alive = universe.AliveSourceIds();
  const Source& crawled =
      universe.source(alive[rng.Uniform(static_cast<uint32_t>(alive.size()))]);
  std::vector<uint64_t> tuples(crawled.tuples().begin(),
                               crawled.tuples().end());
  for (size_t g = 0; g < tuples.size() / 10 + 1; ++g) {
    tuples.push_back((uint64_t{0xBEEF} << 32) | rng.Uniform(1u << 30));
  }
  const Source& renamed =
      universe.source(alive[rng.Uniform(static_cast<uint32_t>(alive.size()))]);
  Source fresh(0, "churned-" + std::to_string(round) + ".example.com");
  fresh.AddAttribute(Attribute("title"));
  fresh.AddAttribute(Attribute("price"));
  fresh.SetTuples({rng.Uniform(1u << 20), rng.Uniform(1u << 20)});
  return {
      ChurnEvent::UpdateTuples(crawled.name(), tuples),
      ChurnEvent::RenameAttribute(renamed.name(), 0,
                                  renamed.attribute(0).name + " v2"),
      ChurnEvent::AddSource(std::move(fresh)),
  };
}

struct PhaseResult {
  double sessions_per_sec = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  size_t failed = 0;
  size_t determinism_mismatches = 0;
};

double PercentileMs(std::vector<double>* latencies, double q) {
  if (latencies->empty()) return 0.0;
  std::sort(latencies->begin(), latencies->end());
  const size_t rank = std::min(
      latencies->size() - 1,
      static_cast<size_t>(q * static_cast<double>(latencies->size())));
  return (*latencies)[rank] * 1e3;
}

/// Runs one phase: `num_clients` closed-loop threads, each issuing
/// `requests_per_client` Refines round-robin over the tenants with
/// deterministic seeds; optionally a writer publishing churn batches
/// concurrently. Observations of (tenant, seed, epoch) are cross-checked
/// for determinism.
PhaseResult RunPhase(MubeService* service, const LoadShape& shape,
                     bool with_churn) {
  PhaseResult result;
  Mutex mu;
  std::map<std::tuple<std::string, uint64_t, uint64_t>,
           std::vector<uint32_t>>
      canonical;
  std::vector<std::vector<double>> latencies(shape.num_clients);
  std::vector<size_t> failures(shape.num_clients, 0);
  std::vector<size_t> mismatches(shape.num_clients, 0);

  WallTimer wall;
  std::vector<std::thread> clients;
  for (size_t c = 0; c < shape.num_clients; ++c) {
    clients.emplace_back([&, c] {
      for (size_t i = 0; i < shape.requests_per_client; ++i) {
        RefineRequest request;
        const size_t index = c * shape.requests_per_client + i;
        request.tenant = "tenant-" + std::to_string(index % shape.num_tenants);
        // A small shared seed pool: concurrent duplicates of
        // (tenant, seed) at one epoch exist and must agree.
        request.seed = 1 + index % 16;
        WallTimer latency;
        const RefineResponse response = service->Refine(request);
        if (!response.status.ok()) {
          ++failures[c];
          continue;
        }
        latencies[c].push_back(latency.ElapsedSeconds());
        MutexLock lock(&mu);
        auto [it, inserted] = canonical.try_emplace(
            {request.tenant, request.seed, response.epoch},
            response.results[0].solution.sources);
        if (!inserted &&
            it->second != response.results[0].solution.sources) {
          ++mismatches[c];
        }
      }
    });
  }
  std::thread writer;
  if (with_churn) {
    writer = std::thread([service, &shape] {
      for (size_t round = 0; round < shape.churn_batches; ++round) {
        SnapshotManager::Lease lease = service->snapshots().Acquire();
        const std::vector<ChurnEvent> batch =
            ChurnBatch(lease.universe(), round);
        lease.Release();
        const Status status = service->ApplyChurn(batch);
        if (!status.ok()) {
          std::fprintf(stderr, "churn batch %zu rejected: %s\n", round,
                       status.ToString().c_str());
        }
      }
    });
  }
  for (std::thread& client : clients) client.join();
  if (writer.joinable()) writer.join();
  const double elapsed = wall.ElapsedSeconds();

  std::vector<double> all;
  for (const std::vector<double>& per_client : latencies) {
    all.insert(all.end(), per_client.begin(), per_client.end());
  }
  for (size_t f : failures) result.failed += f;
  for (size_t m : mismatches) result.determinism_mismatches += m;
  result.sessions_per_sec = static_cast<double>(all.size()) / elapsed;
  result.p50_ms = PercentileMs(&all, 0.50);
  result.p99_ms = PercentileMs(&all, 0.99);
  return result;
}

/// Replays a fixed probe set twice against the (now quiescent) current
/// epoch; any divergence is a determinism failure.
size_t ProbeDeterminism(MubeService* service, const LoadShape& shape) {
  size_t mismatches = 0;
  for (size_t p = 0; p < 8; ++p) {
    RefineRequest request;
    request.tenant = "tenant-" + std::to_string(p % shape.num_tenants);
    request.seed = 1000 + p;
    const RefineResponse first = service->Refine(request);
    const RefineResponse second = service->Refine(request);
    if (!first.status.ok() || !second.status.ok() ||
        first.epoch != second.epoch ||
        first.results[0].solution.sources !=
            second.results[0].solution.sources) {
      ++mismatches;
    }
  }
  return mismatches;
}

void PrintStalenessBars(MetricsRegistry* registry) {
  // Re-resolve the serving histogram and render its buckets as bars.
  Histogram* staleness =
      registry->GetHistogram("serving_staleness_epochs", {0, 1, 2, 4, 8, 16});
  const Histogram::Snapshot snap = staleness->TakeSnapshot();
  std::printf("\nsnapshot staleness (epochs behind at completion):\n");
  for (size_t b = 0; b < snap.bucket_counts.size(); ++b) {
    const std::string label =
        b < snap.upper_bounds.size()
            ? "<= " + std::to_string(
                          static_cast<long long>(snap.upper_bounds[b]))
            : "  +Inf";
    std::string bar(snap.count == 0
                        ? 0
                        : (snap.bucket_counts[b] * 40) / snap.count,
                    '#');
    std::printf("  %6s  %8llu  %s\n", label.c_str(),
                static_cast<unsigned long long>(snap.bucket_counts[b]),
                bar.c_str());
  }
}

void PrintEngineCounters(MetricsRegistry* registry) {
  auto value = [registry](const char* name) {
    return static_cast<unsigned long long>(
        registry->GetCounter(name)->Value());
  };
  const unsigned long long match_hits = value("mube_match_memo_hits_total");
  const unsigned long long match_misses =
      value("mube_match_memo_misses_total");
  const unsigned long long union_hits = value("mube_union_memo_hits_total");
  const unsigned long long union_misses =
      value("mube_union_memo_misses_total");
  auto rate = [](unsigned long long hits, unsigned long long misses) {
    const unsigned long long total = hits + misses;
    return total == 0 ? 0.0
                      : 100.0 * static_cast<double>(hits) /
                            static_cast<double>(total);
  };
  std::printf("\nengine hot-path counters (all epochs, all tenants):\n");
  std::printf("  runs %llu, optimizer evaluations %llu\n",
              value("mube_runs_total"),
              value("mube_optimizer_evaluations_total"));
  std::printf("  match memo %.1f%% hit (%llu/%llu), union memo %.1f%% hit "
              "(%llu/%llu)\n",
              rate(match_hits, match_misses), match_hits,
              match_hits + match_misses, rate(union_hits, union_misses),
              union_hits, union_hits + union_misses);
  std::printf("  measure calls %llu, churn batches %llu, epochs published "
              "%llu, reclaimed %llu\n",
              value("mube_measure_calls_total"),
              value("mube_churn_batches_total"),
              value("serving_epochs_published_total"),
              value("serving_epochs_reclaimed_total"));
}

int Main() {
  const LoadShape shape = Shape();
  std::printf(
      "µBE serving throughput: %zu tenants, %zu clients x %zu requests, "
      "%zu churn batches, %zu sources%s\n\n",
      shape.num_tenants, shape.num_clients, shape.requests_per_client,
      shape.churn_batches, shape.num_sources, QuickMode() ? " (quick)" : "");

  GeneratedUniverse generated =
      GenerateUniverse(bench::PaperWorkload(shape.num_sources, 42))
          .ValueOrDie();
  ServiceOptions options;
  options.queue_capacity = 4096;
  options.max_batch = 16;

  auto build_service = [&](MetricsRegistry* registry) {
    std::unique_ptr<MubeService> service =
        MubeService::Create(generated.universe, ServingConfig(shape),
                            options, registry)
            .ValueOrDie();
    for (size_t t = 0; t < shape.num_tenants; ++t) {
      service->RegisterTenant("tenant-" + std::to_string(t)).ValueOrDie();
    }
    return service;
  };

  // Phase A: churn-free baseline.
  MetricsRegistry baseline_registry;
  std::unique_ptr<MubeService> baseline = build_service(&baseline_registry);
  const PhaseResult a = RunPhase(baseline.get(), shape, /*with_churn=*/false);
  baseline->Stop();

  // Phase B: identical stream with interleaved churn.
  MetricsRegistry churn_registry;
  std::unique_ptr<MubeService> churned = build_service(&churn_registry);
  const PhaseResult b = RunPhase(churned.get(), shape, /*with_churn=*/true);
  churned->Drain();
  const size_t probe_mismatches = ProbeDeterminism(churned.get(), shape);
  const uint64_t published = churned->snapshots().published_count();
  churned->Drain();
  const size_t live_epochs = churned->snapshots().live_epoch_count();

  PrintHeader({"phase", "sessions/s", "p50 ms", "p99 ms", "failed"});
  std::printf("%14s%14.1f%14.2f%14.2f%14zu\n", "churn-free",
              a.sessions_per_sec, a.p50_ms, a.p99_ms, a.failed);
  std::printf("%14s%14.1f%14.2f%14.2f%14zu\n", "churning",
              b.sessions_per_sec, b.p50_ms, b.p99_ms, b.failed);

  PrintStalenessBars(&churn_registry);
  PrintEngineCounters(&churn_registry);

  // ------------------------------------------------------------ the bars --
  bool ok = true;
  auto bar = [&ok](bool passed, const char* what) {
    std::printf("%s  %s\n", passed ? "PASS" : "FAIL", what);
    ok = ok && passed;
  };
  std::printf("\n");
  bar(a.failed == 0 && b.failed == 0,
      "every request in both phases succeeded");
  // Floor the baseline at 1ms so a near-zero denominator cannot turn
  // scheduler noise into a spurious failure.
  const double p99_floor = std::max(a.p99_ms, 1.0);
  std::printf("%s  churn never blocks readers: p99 %.2fms <= 2x baseline "
              "%.2fms\n",
              b.p99_ms <= 2.0 * p99_floor ? "PASS" : "FAIL", b.p99_ms,
              p99_floor);
  ok = ok && b.p99_ms <= 2.0 * p99_floor;
  bar(b.determinism_mismatches == 0 && probe_mismatches == 0,
      "fixed-seed request streams are deterministic per epoch");
  bar(published == shape.churn_batches,
      "all churn batches published");
  bar(live_epochs == 1,
      "superseded epochs reclaimed (1 live epoch after drain)");
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace mube

int main() { return mube::Main(); }
