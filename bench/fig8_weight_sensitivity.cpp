// Figure 8: sensitivity of µBE to the weight on the cardinality QEF.
// Choose 20 sources from a universe of 200; sweep the Card weight from
// 0.1 to 1.0 with the remaining weights set equal; plot the *absolute
// cardinality* of the chosen solution.
//
// Paper's expectations: cardinality of the solution rises with the weight
// and flattens after ≈ 0.5 (by then µBE already picks the top-cardinality
// sources that satisfy the matching threshold).

#include <cstdio>

#include "bench/bench_util.h"
#include "core/mube.h"
#include "datagen/generator.h"
#include "qef/data_qefs.h"

using namespace mube;        // NOLINT
using namespace mube::bench; // NOLINT

int main() {
  std::printf(
      "Figure 8 — solution cardinality vs weight on the Card QEF "
      "(m = 20, |U| = 200)\n");
  std::printf("paper shape: rises, then flattens around weight 0.5\n\n");

  auto generated = GenerateUniverse(PaperWorkload(200));
  if (!generated.ok()) {
    std::fprintf(stderr, "generate: %s\n",
                 generated.status().ToString().c_str());
    return 1;
  }
  const Universe& universe = generated.ValueOrDie().universe;

  MubeConfig config = BenchConfig(200, 20);
  auto engine = Mube::Create(&universe, config);
  if (!engine.ok()) {
    std::fprintf(stderr, "create: %s\n", engine.status().ToString().c_str());
    return 1;
  }

  CardQef card(universe);
  PrintHeader({"card weight", "cardinality", "card frac", "Q(S)"});

  for (double w = 0.1; w <= 1.0 + 1e-9; w += 0.1) {
    // Card gets w; the other four QEFs split the remainder equally
    // (matching, coverage, redundancy, mttf in PaperDefaults order).
    const double rest = (1.0 - w) / 4.0;
    RunSpec spec;
    spec.weights = std::vector<double>{rest, w, rest, rest, rest};
    spec.seed = 77;
    auto result = engine.ValueOrDie()->Run(spec);
    if (!result.ok()) {
      std::printf("%14.1f%14s\n", w, "infeas");
      continue;
    }
    const SolutionEval& best = result.ValueOrDie().solution;
    const uint64_t cardinality = card.RawCardinality(best.sources);
    std::printf("%14.1f%14llu%14.4f%14.4f\n", w,
                static_cast<unsigned long long>(cardinality),
                card.Evaluate(best.sources), best.overall);
    std::fflush(stdout);
  }
  return 0;
}
