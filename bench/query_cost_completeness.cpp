// Extension experiment: the query-time consequences of source selection —
// the tradeoff the paper's introduction motivates µBE with ("including all
// these sources will unnecessarily increase the cost of executing queries,
// especially if the same information is repeated in multiple sources").
//
// Sweeps m, solves with µBE, and executes a fixed query workload over each
// solution, reporting completeness (distinct answers / answers over the
// whole universe), transfer overhead from duplicates, and simulated cost.
// A second table re-solves at m = 20 with the Redundancy weight dialed up,
// showing redundancy-aware selection buys the same completeness cheaper.

#include <cstdio>
#include <unordered_set>

#include "bench/bench_util.h"
#include "core/mube.h"
#include "datagen/generator.h"
#include "exec/executor.h"
#include "exec/virtual_data.h"
#include "match/matcher.h"

using namespace mube;        // NOLINT
using namespace mube::bench; // NOLINT

namespace {

struct WorkloadStats {
  double completeness = 0.0;
  double dup_overhead = 0.0;  // duplicates / transferred
  double conflicts = 0.0;
  double cost_ms = 0.0;
};

/// The workload is defined over *concepts*, not GA indexes: GA indexes are
/// schema-local, so the same semantic query must be re-targeted at each
/// schema's own GA for that concept.
struct ConceptQuery {
  /// kNoConcept = full scan (no predicate).
  int32_t concept_id = kNoConcept;
  CompareOp op = CompareOp::kEq;
  uint64_t value = 0;
};

std::vector<ConceptQuery> FixedWorkload() {
  return {
      {kNoConcept, CompareOp::kEq, 0},  // full scan
      {0, CompareOp::kEq, 3},           // point lookup on "title"
      {0, CompareOp::kLt, 256},         // range on "title"
  };
}

/// Largest GA of `schema` that is purely concept `concept_id` (clustering
/// may split a concept into several variant-family GAs; querying the
/// biggest one is what a user would do).
std::optional<size_t> GaForConcept(const Universe& universe,
                                   const MediatedSchema& schema,
                                   int32_t concept_id) {
  std::optional<size_t> best;
  for (size_t g = 0; g < schema.size(); ++g) {
    bool pure = !schema.ga(g).empty();
    for (const AttributeRef& ref : schema.ga(g).members()) {
      if (universe.attribute(ref).concept_id != concept_id) {
        pure = false;
        break;
      }
    }
    if (pure && (!best.has_value() ||
                 schema.ga(g).size() > schema.ga(*best).size())) {
      best = g;
    }
  }
  return best;
}

/// Ground-truth answer count of one concept query: distinct tuples, over
/// ALL sources, that match the predicate and are held by at least one
/// source exposing the concept. Schema-independent — the denominator of
/// the completeness metric.
size_t TrueAnswerCount(const Universe& universe, const ConceptQuery& query) {
  std::unordered_set<uint64_t> answers;
  for (const Source& source : universe.sources()) {
    if (!source.has_tuples()) continue;
    if (query.concept_id == kNoConcept) {
      answers.insert(source.tuples().begin(), source.tuples().end());
      continue;
    }
    const Attribute* attribute = nullptr;
    for (const Attribute& a : source.attributes()) {
      if (a.concept_id == query.concept_id) {
        attribute = &a;
        break;
      }
    }
    if (attribute == nullptr) continue;
    const uint64_t key = SemanticKey(*attribute);
    const Predicate predicate{0, query.op, query.value};
    for (uint64_t tuple : source.tuples()) {
      if (predicate.Matches(FieldValue(tuple, key))) answers.insert(tuple);
    }
  }
  return answers.size();
}

/// Executes the concept workload over one integration system; returns the
/// per-query distinct-answer counts through `answer_counts` (for oracle
/// comparison). A query whose concept the schema does not expose
/// contributes zero answers at zero cost — an incompleteness the metric
/// should (and does) punish.
WorkloadStats RunWorkload(const Universe& universe,
                          const std::vector<uint32_t>& sources,
                          const MediatedSchema& schema,
                          std::vector<size_t>* answer_counts,
                          const std::vector<size_t>* oracle_counts) {
  MediatedExecutor exec(universe, sources, schema);
  WorkloadStats stats;
  const std::vector<ConceptQuery> workload = FixedWorkload();
  answer_counts->assign(workload.size(), 0);
  for (size_t i = 0; i < workload.size(); ++i) {
    Query query;
    if (workload[i].concept_id != kNoConcept) {
      std::optional<size_t> ga =
          GaForConcept(universe, schema, workload[i].concept_id);
      if (!ga.has_value()) continue;  // concept missing: 0 answers
      query.predicates = {
          {*ga, workload[i].op, workload[i].value}};
    }
    auto result = exec.Execute(query);
    if (!result.ok()) continue;
    const ExecutionResult& r = result.ValueOrDie();
    (*answer_counts)[i] = r.records.size();
    if (oracle_counts != nullptr && (*oracle_counts)[i] > 0) {
      stats.completeness += static_cast<double>(r.records.size()) /
                            static_cast<double>((*oracle_counts)[i]);
    }
    if (r.tuples_transferred > 0) {
      stats.dup_overhead += static_cast<double>(r.duplicates_merged) /
                            static_cast<double>(r.tuples_transferred);
    }
    stats.conflicts += static_cast<double>(r.conflicts);
    stats.cost_ms += r.total_cost_ms;
  }
  const double n = static_cast<double>(workload.size());
  stats.completeness /= n;
  stats.dup_overhead /= n;
  stats.conflicts /= n;
  return stats;
}

}  // namespace

int main() {
  std::printf(
      "Query-time cost vs completeness of µBE solutions (|U| = %d)\n",
      QuickMode() ? 80 : 200);
  std::printf(
      "expected: completeness and cost both rise with m; duplicates grow\n\n");

  auto generated = GenerateUniverse(PaperWorkload(QuickMode() ? 80 : 200));
  if (!generated.ok()) {
    std::fprintf(stderr, "generate: %s\n",
                 generated.status().ToString().c_str());
    return 1;
  }
  const Universe& universe = generated.ValueOrDie().universe;

  MubeConfig base_config = BenchConfig(universe.size(), 20);
  auto engine = Mube::Create(&universe, base_config);
  if (!engine.ok()) {
    std::fprintf(stderr, "create: %s\n", engine.status().ToString().c_str());
    return 1;
  }

  // Oracle: schema-independent ground-truth answer counts over the whole
  // universe.
  std::vector<size_t> oracle_counts;
  for (const ConceptQuery& q : FixedWorkload()) {
    oracle_counts.push_back(TrueAnswerCount(universe, q));
  }

  PrintHeader({"m", "completeness", "dup overhead", "conflicts",
               "cost (ms)"});
  const std::vector<size_t> sweep = QuickMode()
                                        ? std::vector<size_t>{5, 10, 20}
                                        : std::vector<size_t>{5, 10, 20,
                                                              40, 80};
  for (size_t m : sweep) {
    RunSpec spec;
    spec.max_sources = m;
    spec.seed = 7;
    auto solved = engine.ValueOrDie()->Run(spec);
    if (!solved.ok()) {
      std::printf("%14zu%14s\n", m, "infeas");
      continue;
    }
    const SolutionEval& solution = solved.ValueOrDie().solution;
    std::vector<size_t> counts;
    const WorkloadStats stats = RunWorkload(
        universe, solution.sources, solution.schema, &counts,
        &oracle_counts);
    std::printf("%14zu%14.3f%14.3f%14.1f%14.0f\n", m, stats.completeness,
                stats.dup_overhead, stats.conflicts, stats.cost_ms);
    std::fflush(stdout);
  }

  // Redundancy-weight ablation at m = 20: shifting weight from cardinality
  // to redundancy buys less duplicated transfer.
  std::printf("\nredundancy-weight ablation (m = 20):\n");
  PrintHeader({"redundancy w", "completeness", "dup overhead", "cost (ms)"});
  for (double rw : {0.05, 0.15, 0.40, 0.60}) {
    // matching .25 stays; coverage .20 stays; mttf .15 stays; the rest
    // splits between cardinality and redundancy.
    const double card = 1.0 - 0.25 - 0.20 - 0.15 - rw;
    if (card < 0) break;
    RunSpec spec;
    spec.weights = std::vector<double>{0.25, card, 0.20, rw, 0.15};
    spec.max_sources = 20;
    spec.seed = 7;
    auto solved = engine.ValueOrDie()->Run(spec);
    if (!solved.ok()) continue;
    const SolutionEval& solution = solved.ValueOrDie().solution;
    std::vector<size_t> counts;
    const WorkloadStats stats = RunWorkload(
        universe, solution.sources, solution.schema, &counts,
        &oracle_counts);
    std::printf("%14.2f%14.3f%14.3f%14.0f\n", rw, stats.completeness,
                stats.dup_overhead, stats.cost_ms);
    std::fflush(stdout);
  }
  return 0;
}
