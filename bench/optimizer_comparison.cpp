// §6 ablation: the paper tried stochastic local search, particle swarm
// optimization, constrained simulated annealing, and tabu search, and
// found "tabu search gives the best results" and is "more robust and
// generates higher quality solutions".
//
// This bench gives all four solvers an identical evaluation budget on the
// same instances (m = 20, |U| = 200, several seeds) and reports mean and
// worst solution quality plus wall time.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/mube.h"
#include "datagen/generator.h"

using namespace mube;        // NOLINT
using namespace mube::bench; // NOLINT

int main() {
  std::printf(
      "Optimizer ablation (§6) — equal budgets, m = 20, |U| = 200\n");
  std::printf("paper: tabu search is the most robust / highest quality\n\n");

  auto generated = GenerateUniverse(PaperWorkload(200));
  if (!generated.ok()) {
    std::fprintf(stderr, "generate: %s\n",
                 generated.status().ToString().c_str());
    return 1;
  }

  MubeConfig config = BenchConfig(200, 20);
  config.optimizer_options.patience = 0;  // same fixed budget for everyone
  auto engine = Mube::Create(&generated.ValueOrDie().universe, config);
  if (!engine.ok()) {
    std::fprintf(stderr, "create: %s\n", engine.status().ToString().c_str());
    return 1;
  }

  const size_t runs = QuickMode() ? 3 : 8;
  PrintHeader({"optimizer", "mean Q", "worst Q", "best Q", "mean time(s)"});

  for (const char* name : {"tabu", "sls", "anneal", "pso"}) {
    std::vector<double> qualities;
    double total_time = 0.0;
    for (size_t seed = 1; seed <= runs; ++seed) {
      RunSpec spec;
      spec.optimizer = std::string(name);
      spec.seed = seed * 31;
      auto result = engine.ValueOrDie()->Run(spec);
      if (!result.ok()) {
        qualities.push_back(0.0);
        continue;
      }
      qualities.push_back(result.ValueOrDie().solution.overall);
      total_time += result.ValueOrDie().elapsed_seconds;
    }
    double mean = 0.0;
    for (double q : qualities) mean += q;
    mean /= static_cast<double>(qualities.size());
    const double worst = *std::min_element(qualities.begin(),
                                           qualities.end());
    const double best = *std::max_element(qualities.begin(),
                                          qualities.end());
    std::printf("%14s%14.4f%14.4f%14.4f%14.2f\n", name, mean, worst, best,
                total_time / static_cast<double>(runs));
    std::fflush(stdout);
  }
  return 0;
}
