// Parallel optimizer scaling: wall-clock of a fixed-seed tabu/sls/anneal
// run at threads=1 vs threads=8 over the same instance, with a hard
// equality check that both runs produce bit-identical solutions and
// incumbent trajectories — determinism is asserted unconditionally (exit 1
// on any divergence), the ≥2.5× speedup bar only where the hardware can
// physically deliver it (≥8 logical cores; on smaller machines the timing
// rows are informational).
//
//   MUBE_BENCH_QUICK=1   shrink the instance for CI smoke runs

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/logging.h"
#include "common/timer.h"
#include "opt/optimizer.h"
#include "qef/data_qefs.h"
#include "qef/match_qef.h"
#include "qef/qef.h"

namespace mube::bench {
namespace {

struct Run {
  SolutionEval solution;
  SearchTrace trace;
  double seconds = 0.0;
};

Run RunOnce(const Mube& engine, const std::string& solver, unsigned threads,
            size_t budget) {
  // Fresh per-run QEF state (match memo included) so the second run cannot
  // ride the first run's warm cache and fake a speedup.
  MatchOptions match_options;
  match_options.theta = engine.config().theta;
  match_options.beta = engine.config().beta;
  QefSet qefs;
  MUBE_CHECK(qefs.Add(std::make_unique<MatchQualityQef>(
                          engine.matcher(), match_options,
                          std::vector<uint32_t>{}, MediatedSchema()),
                      0.6)
                 .ok());
  MUBE_CHECK(qefs.Add(std::make_unique<CardQef>(engine.universe()), 0.4).ok());

  Problem problem;
  problem.universe = &engine.universe();
  problem.qefs = &qefs;
  problem.match_qef =
      static_cast<const MatchQualityQef*>(&qefs.qef(0));
  problem.max_sources = engine.config().max_sources;

  Run run;
  OptimizerOptions options;
  options.seed = 17;
  options.max_evaluations = budget;
  options.patience = 0;
  options.threads = threads;
  options.trace = &run.trace;
  auto optimizer = MakeOptimizer(solver, options);
  MUBE_CHECK(optimizer.ok());
  WallTimer timer;
  auto result = optimizer.ValueOrDie()->Run(problem);
  run.seconds = timer.ElapsedSeconds();
  MUBE_CHECK(result.ok());
  run.solution = result.MoveValueUnsafe();
  return run;
}

bool Identical(const Run& a, const Run& b) {
  return a.solution.sources == b.solution.sources &&
         a.solution.overall == b.solution.overall &&
         a.solution.qef_values == b.solution.qef_values &&
         a.trace.evaluations == b.trace.evaluations &&
         a.trace.incumbent_q == b.trace.incumbent_q;
}

int Main() {
  const size_t num_sources = QuickMode() ? 80 : 240;
  const size_t budget = QuickMode() ? 1'500 : 12'000;
  const unsigned cores = std::thread::hardware_concurrency();
  const bool can_speedup = cores >= 8;

  auto generated = GenerateUniverse(PaperWorkload(num_sources));
  MUBE_CHECK(generated.ok());
  const GeneratedUniverse& g = generated.ValueOrDie();
  MubeConfig config = BenchConfig(num_sources, 12);
  auto engine = Mube::Create(&g.universe, config);
  MUBE_CHECK(engine.ok());

  std::printf("# parallel optimizer scaling — %zu sources, budget %zu, "
              "%u logical cores\n",
              num_sources, budget, cores);
  std::printf("# determinism is a hard failure; the >=2.5x bar is enforced "
              "only with >=8 cores\n");
  std::printf("%-8s %12s %12s %9s %13s\n", "solver", "serial_s", "parallel_s",
              "speedup", "bit_identical");

  bool determinism_ok = true;
  bool speedup_ok = true;
  for (const char* solver : {"tabu", "sls", "anneal"}) {
    const Run serial = RunOnce(*engine.ValueOrDie(), solver, 1, budget);
    const Run parallel = RunOnce(*engine.ValueOrDie(), solver, 8, budget);
    const bool identical = Identical(serial, parallel);
    determinism_ok = determinism_ok && identical;
    const double speedup =
        parallel.seconds > 0.0 ? serial.seconds / parallel.seconds : 0.0;
    // Tabu evaluates whole neighborhoods per move and parallelizes best;
    // first-improvement solvers (sls, anneal) speculate shallower batches,
    // so the headline bar is judged on tabu.
    if (can_speedup && std::string(solver) == "tabu" && speedup < 2.5) {
      speedup_ok = false;
    }
    std::printf("%-8s %12.3f %12.3f %8.2fx %13s\n", solver, serial.seconds,
                parallel.seconds, speedup, identical ? "yes" : "NO");
  }

  if (!determinism_ok) {
    std::fprintf(stderr, "FAIL: thread count changed a fixed-seed run\n");
    return 1;
  }
  if (!speedup_ok) {
    std::fprintf(stderr, "FAIL: tabu speedup below 2.5x with %u cores\n",
                 cores);
    return 1;
  }
  if (!can_speedup) {
    std::printf("# <8 cores: speedup rows informational, determinism "
                "verified\n");
  }
  return 0;
}

}  // namespace
}  // namespace mube::bench

int main() { return mube::bench::Main(); }
