// Extension experiment for §4's fallback: sources that refuse to ship PCSA
// hash signatures are excluded from the Coverage/Redundancy computations
// (they score 0 there) but may still be selected on other merits. This
// bench sweeps the cooperative fraction and reports what the degradation
// actually costs: coverage/redundancy estimates collapse toward 0 while
// matching and cardinality keep the system functional — the graceful
// degradation the paper promises.

#include <cstdio>

#include "bench/bench_util.h"
#include "core/mube.h"
#include "datagen/generator.h"

using namespace mube;        // NOLINT
using namespace mube::bench; // NOLINT

int main() {
  std::printf("Uncooperative sources (§4 fallback) — m = 20, |U| = 200\n");
  std::printf(
      "expected: coverage/redundancy QEF signal fades with cooperation; "
      "matching quality unaffected\n\n");

  PrintHeader({"coop frac", "Q(S)", "matching", "coverage", "redundancy",
               "coop chosen"});

  for (double fraction : {1.0, 0.75, 0.5, 0.25, 0.0}) {
    GeneratorConfig workload = PaperWorkload(QuickMode() ? 80 : 200);
    workload.cooperative_fraction = fraction;
    auto generated = GenerateUniverse(workload);
    if (!generated.ok()) {
      std::fprintf(stderr, "generate: %s\n",
                   generated.status().ToString().c_str());
      return 1;
    }
    const Universe& universe = generated.ValueOrDie().universe;

    MubeConfig config = BenchConfig(universe.size(), 20);
    auto engine = Mube::Create(&universe, config);
    if (!engine.ok()) {
      std::fprintf(stderr, "create: %s\n",
                   engine.status().ToString().c_str());
      return 1;
    }
    RunSpec spec;
    spec.seed = 5;
    auto result = engine.ValueOrDie()->Run(spec);
    if (!result.ok()) {
      std::printf("%14.2f%14s\n", fraction, "infeas");
      continue;
    }
    const SolutionEval& best = result.ValueOrDie().solution;
    size_t cooperative_chosen = 0;
    for (uint32_t sid : best.sources) {
      cooperative_chosen += universe.source(sid).has_tuples() ? 1 : 0;
    }
    std::printf("%14.2f%14.4f%14.4f%14.4f%14.4f%11zu/20\n", fraction,
                best.overall, best.qef_values[0], best.qef_values[2],
                best.qef_values[3], cooperative_chosen);
    std::fflush(stdout);
  }
  return 0;
}
