// §7.4 (first experiment): robustness of µBE to imprecise weights. The
// paper randomly perturbed all QEF weights by up to 15% and observed that
// "at most 1 GA in the solution changed, and the selected sources rarely
// changed".
//
// This bench runs a baseline (m = 20, |U| = 200, defaults), then N
// perturbed runs, and reports the source-set and GA-set deltas per trial.

#include <algorithm>
#include <cstdio>
#include <set>

#include "bench/bench_util.h"
#include "common/random.h"
#include "core/mube.h"
#include "datagen/generator.h"

using namespace mube;        // NOLINT
using namespace mube::bench; // NOLINT

namespace {

std::set<std::string> GaKeys(const MediatedSchema& schema) {
  std::set<std::string> keys;
  for (const GlobalAttribute& ga : schema.gas()) keys.insert(ga.ToString());
  return keys;
}

size_t SetDiff(const std::set<std::string>& a,
               const std::set<std::string>& b) {
  size_t only_a = 0;
  for (const auto& k : a) only_a += b.count(k) ? 0 : 1;
  return only_a;
}

/// Drops attributes of sources outside `keep` from every GA. Comparing two
/// solutions' schemas restricted to their COMMON sources separates "the
/// matching structure changed" (what the paper's ≤1-GA claim is about)
/// from "a swapped source's attributes left/joined GAs" (an unavoidable
/// ripple of any source change).
std::set<std::string> RestrictedGaKeys(const MediatedSchema& schema,
                                       const std::set<uint32_t>& keep) {
  std::set<std::string> keys;
  for (const GlobalAttribute& ga : schema.gas()) {
    GlobalAttribute restricted;
    for (const AttributeRef& ref : ga.members()) {
      if (keep.count(ref.source_id)) restricted.Insert(ref);
    }
    if (restricted.size() >= 2) keys.insert(restricted.ToString());
  }
  return keys;
}

}  // namespace

int main() {
  std::printf(
      "§7.4 weight robustness — perturb all weights by up to ±15%%\n");
  std::printf(
      "paper: at most 1 GA changes; selected sources rarely change\n\n");

  auto generated = GenerateUniverse(PaperWorkload(200));
  if (!generated.ok()) {
    std::fprintf(stderr, "generate: %s\n",
                 generated.status().ToString().c_str());
    return 1;
  }

  MubeConfig config = BenchConfig(200, 20);
  auto engine = Mube::Create(&generated.ValueOrDie().universe, config);
  if (!engine.ok()) {
    std::fprintf(stderr, "create: %s\n", engine.status().ToString().c_str());
    return 1;
  }

  RunSpec base_spec;
  base_spec.seed = 99;
  auto base = engine.ValueOrDie()->Run(base_spec);
  if (!base.ok()) {
    std::fprintf(stderr, "baseline: %s\n", base.status().ToString().c_str());
    return 1;
  }
  const SolutionEval& baseline = base.ValueOrDie().solution;
  const std::set<std::string> base_gas = GaKeys(baseline.schema);
  std::printf("baseline: Q = %.4f, %zu sources, %zu GAs\n\n",
              baseline.overall, baseline.sources.size(), base_gas.size());

  PrintHeader({"trial", "src changed", "GAs changed", "chg|common",
               "Q(S)"});

  Rng rng(4242);
  const std::vector<double> defaults = config.Weights();
  const size_t trials = QuickMode() ? 4 : 10;
  size_t max_src_changed = 0, max_ga_changed = 0;
  for (size_t t = 0; t < trials; ++t) {
    // Perturb each weight by up to ±15% and renormalize to sum 1.
    std::vector<double> weights = defaults;
    double sum = 0.0;
    for (double& w : weights) {
      w *= 1.0 + rng.UniformDouble(-0.15, 0.15);
      sum += w;
    }
    for (double& w : weights) w /= sum;

    RunSpec spec;
    spec.weights = weights;
    spec.seed = 99;  // same search trajectory seed as the baseline
    auto result = engine.ValueOrDie()->Run(spec);
    if (!result.ok()) {
      std::printf("%14zu%14s\n", t, "infeas");
      continue;
    }
    const SolutionEval& sol = result.ValueOrDie().solution;

    std::vector<uint32_t> changed;
    std::set_symmetric_difference(sol.sources.begin(), sol.sources.end(),
                                  baseline.sources.begin(),
                                  baseline.sources.end(),
                                  std::back_inserter(changed));
    const std::set<std::string> gas = GaKeys(sol.schema);
    const size_t ga_changed = std::max(SetDiff(gas, base_gas),
                                       SetDiff(base_gas, gas));

    // GA delta over the common sources: the structural change.
    std::set<uint32_t> common;
    std::set_intersection(sol.sources.begin(), sol.sources.end(),
                          baseline.sources.begin(), baseline.sources.end(),
                          std::inserter(common, common.begin()));
    const std::set<std::string> restricted =
        RestrictedGaKeys(sol.schema, common);
    const std::set<std::string> base_restricted =
        RestrictedGaKeys(baseline.schema, common);
    const size_t ga_common_changed =
        std::max(SetDiff(restricted, base_restricted),
                 SetDiff(base_restricted, restricted));

    max_src_changed = std::max(max_src_changed, changed.size() / 2);
    max_ga_changed = std::max(max_ga_changed, ga_common_changed);
    std::printf("%14zu%14zu%14zu%14zu%14.4f\n", t, changed.size() / 2,
                ga_changed, ga_common_changed, sol.overall);
    std::fflush(stdout);
  }

  std::printf("\nworst case over %zu trials: %zu sources changed, %zu GAs "
              "structurally changed (over common sources)\n",
              trials, max_src_changed, max_ga_changed);
  return 0;
}
