#ifndef MUBE_BENCH_BENCH_UTIL_H_
#define MUBE_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/config.h"
#include "core/mube.h"
#include "datagen/generator.h"

/// \file bench_util.h
/// Shared machinery for the experiment harnesses in bench/. Each binary
/// reproduces one table or figure of the paper (§7) and prints the same
/// rows/series the paper reports, plus the paper's qualitative expectation
/// so shape comparison is immediate.
///
/// Environment knobs:
///   MUBE_BENCH_QUICK=1   shrink sweeps for smoke runs (CI, tight loops)

namespace mube::bench {

inline bool QuickMode() {
  const char* env = std::getenv("MUBE_BENCH_QUICK");
  return env != nullptr && env[0] == '1';
}

/// The paper's §7.1 workload at a given universe size. Tuple volumes are
/// scaled down ~10x from the paper's 4M-tuple pool in quick mode.
inline GeneratorConfig PaperWorkload(size_t num_sources, uint64_t seed = 42) {
  GeneratorConfig config;
  config.seed = seed;
  config.num_sources = num_sources;
  if (QuickMode()) {
    config.min_cardinality = 1'000;
    config.max_cardinality = 100'000;
    config.tuple_pool_size = 400'000;
  }
  return config;
}

/// Paper defaults with a search budget scaled to the instance, mirroring
/// classic tabu search whose per-iteration neighborhood is all m·(N−m)
/// swaps: a fixed budget would under-search big instances and make the
/// Figure 5/6 time curves meaningless. Patience lets constrained (smaller)
/// spaces terminate early, which is the paper's "adding constraints
/// reduces execution time" effect.
inline MubeConfig BenchConfig(size_t universe_size, size_t num_chosen) {
  MubeConfig config = MubeConfig::PaperDefaults();
  config.max_sources = num_chosen;
  size_t budget = 25 * universe_size + 150 * num_chosen;
  if (QuickMode()) budget /= 6;
  config.optimizer_options.max_evaluations = budget;
  config.optimizer_options.patience = budget / 3;
  config.optimizer_options.seed = 1;
  return config;
}

/// Picks `count` source constraints among the unperturbed ("fully
/// conformant to one of the original BAMM schemas", §7.2) sources.
inline std::vector<uint32_t> PickSourceConstraints(
    const GeneratedUniverse& generated, size_t count) {
  std::vector<uint32_t> constraints;
  const auto& pool = generated.unperturbed_source_ids;
  for (size_t i = 0; i < count && i < pool.size(); ++i) {
    // Spread across the pool deterministically.
    constraints.push_back(pool[(i * 7) % pool.size()]);
  }
  return constraints;
}

/// Builds `count` GA constraints, each an accurate matching of up to
/// `max_attrs` same-concept attributes from distinct sources (§7.2).
inline MediatedSchema PickGaConstraints(const GeneratedUniverse& generated,
                                        size_t count,
                                        size_t max_attrs = 5) {
  MediatedSchema constraints;
  const Universe& u = generated.universe;
  for (size_t c = 0; c < count; ++c) {
    const int32_t concept_id = static_cast<int32_t>(c);  // concept 0, 1, ...
    GlobalAttribute ga;
    for (const Source& s : u.sources()) {
      if (ga.size() >= max_attrs) break;
      for (uint32_t a = 0; a < s.attribute_count(); ++a) {
        if (s.attribute(a).concept_id == concept_id) {
          ga.Insert(AttributeRef(s.id(), a));
          break;  // at most one attribute per source
        }
      }
    }
    if (ga.size() >= 2) constraints.Add(ga);
  }
  return constraints;
}

/// The five constraint configurations of Figures 5-7.
struct ConstraintConfig {
  const char* label;
  size_t source_constraints;
  size_t ga_constraints;
};

inline const std::vector<ConstraintConfig>& PaperConstraintConfigs() {
  static const std::vector<ConstraintConfig> kConfigs = {
      {"no constraints", 0, 0}, {"1 src", 1, 0},         {"3 src", 3, 0},
      {"5 src", 5, 0},          {"5 src + 2 GA", 5, 2},
  };
  return kConfigs;
}

/// Builds a RunSpec for one constraint configuration. The evaluation
/// budget shrinks with the fraction of solution slots pinned by
/// constraints — a classic full-neighborhood tabu search would likewise
/// evaluate only (m − |C|)·(N − m) swaps per iteration, which is the
/// paper's "adding constraints reduces execution time" effect (§7.2).
inline RunSpec MakeRunSpec(const GeneratedUniverse& generated,
                           const ConstraintConfig& config, uint64_t seed,
                           size_t base_budget, size_t num_chosen) {
  RunSpec spec;
  spec.source_constraints =
      PickSourceConstraints(generated, config.source_constraints);
  spec.ga_constraints = PickGaConstraints(generated, config.ga_constraints);
  spec.seed = seed;

  std::vector<uint32_t> pinned = spec.source_constraints;
  for (uint32_t sid : spec.ga_constraints.TouchedSources()) {
    pinned.push_back(sid);
  }
  std::sort(pinned.begin(), pinned.end());
  pinned.erase(std::unique(pinned.begin(), pinned.end()), pinned.end());
  const size_t free_slots =
      num_chosen > pinned.size() ? num_chosen - pinned.size() : 1;
  spec.max_evaluations = std::max<size_t>(
      200, base_budget * free_slots / std::max<size_t>(1, num_chosen));
  return spec;
}

/// Prints an aligned header + separator.
inline void PrintHeader(const std::vector<std::string>& columns) {
  for (const std::string& c : columns) std::printf("%14s", c.c_str());
  std::printf("\n");
  for (size_t i = 0; i < columns.size(); ++i) std::printf("  ------------");
  std::printf("\n");
}

}  // namespace mube::bench

#endif  // MUBE_BENCH_BENCH_UTIL_H_
