// Figure 7: overall solution quality Q(S) for the Figure 6 settings
// (choose 10..50 sources from a universe of 200, five constraint
// configurations).
//
// Paper's expectations: quality increases with the number of sources to
// choose (more options to exploit) and decreases as constraints are added
// (fewer valid options).

#include <cstdio>

#include "bench/bench_util.h"
#include "core/mube.h"
#include "datagen/generator.h"

using namespace mube;        // NOLINT
using namespace mube::bench; // NOLINT

int main() {
  std::printf(
      "Figure 7 — overall quality Q(S), choosing m sources from 200\n");
  std::printf(
      "paper shape: rises with m; more constraints => lower quality\n\n");

  auto generated = GenerateUniverse(PaperWorkload(200));
  if (!generated.ok()) {
    std::fprintf(stderr, "generate: %s\n",
                 generated.status().ToString().c_str());
    return 1;
  }

  const std::vector<size_t> chosen = QuickMode()
                                         ? std::vector<size_t>{10, 20, 30}
                                         : std::vector<size_t>{10, 20, 30,
                                                               40, 50};

  std::vector<std::string> columns = {"m"};
  for (const ConstraintConfig& config : PaperConstraintConfigs()) {
    columns.push_back(config.label);
  }
  PrintHeader(columns);

  for (size_t m : chosen) {
    MubeConfig config = BenchConfig(200, m);
    auto engine = Mube::Create(&generated.ValueOrDie().universe, config);
    if (!engine.ok()) {
      std::fprintf(stderr, "create: %s\n",
                   engine.status().ToString().c_str());
      return 1;
    }
    std::printf("%14zu", m);
    for (const ConstraintConfig& cc : PaperConstraintConfigs()) {
      RunSpec spec = MakeRunSpec(generated.ValueOrDie(), cc, /*seed=*/m,
                                 config.optimizer_options.max_evaluations,
                                 m);
      auto result = engine.ValueOrDie()->Run(spec);
      if (!result.ok()) {
        std::printf("%14s", "infeas");
      } else {
        std::printf("%14.4f", result.ValueOrDie().solution.overall);
      }
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  return 0;
}
