// Extension experiment: precision/recall of concept recovery as a function
// of the matching threshold θ. The paper fixes θ = 0.75 (§7.1) and lets
// the user move it between iterations; this sweep shows why 0.75 is a good
// default for 3-gram Jaccard on web-form attribute names:
//   - low θ merges across concepts (false GAs appear — precision drops);
//   - high θ only accepts near-identical names (concepts recovered from
//     fewer attribute variants — recall drops).

#include <cstdio>

#include "bench/bench_util.h"
#include "core/ground_truth.h"
#include "match/matcher.h"
#include "text/similarity.h"
#include "text/similarity_matrix.h"

using namespace mube;        // NOLINT
using namespace mube::bench; // NOLINT

int main() {
  std::printf("Theta sweep — concept recovery vs matching threshold\n");
  std::printf("expected: false GAs at low theta, missed concepts at high\n\n");

  auto generated = GenerateUniverse(PaperWorkload(QuickMode() ? 60 : 200));
  if (!generated.ok()) {
    std::fprintf(stderr, "generate: %s\n",
                 generated.status().ToString().c_str());
    return 1;
  }
  const GeneratedUniverse& g = generated.ValueOrDie();
  NGramJaccard measure(3);
  SimilarityMatrix matrix(g.universe, measure);
  Matcher matcher(g.universe, matrix);

  std::vector<uint32_t> all;
  for (uint32_t i = 0; i < g.universe.size(); ++i) all.push_back(i);

  PrintHeader({"theta", "GAs", "true GAs", "missed", "false GAs", "F1"});
  for (double theta : {0.30, 0.40, 0.50, 0.60, 0.70, 0.75, 0.80, 0.90,
                       0.95}) {
    MatchOptions options;
    options.theta = theta;
    auto result = matcher.Match(all, options);
    if (!result.ok()) continue;
    SolutionEval solution;
    solution.sources = all;
    solution.schema = result.ValueOrDie().schema;
    const GaQualityReport report =
        ScoreAgainstConcepts(g.universe, solution, g.num_concepts);
    std::printf("%14.2f%14zu%14zu%14zu%14zu%14.3f\n", theta,
                result.ValueOrDie().schema.size(), report.true_gas_selected,
                report.true_gas_missed, report.false_gas,
                result.ValueOrDie().quality);
    std::fflush(stdout);
  }
  return 0;
}
