// Extension experiment: domain independence. Nothing in µBE is specific to
// the Books domain the paper evaluates on; this bench repeats the Table 1
// measurement on a second, structurally different corpus (job-search query
// interfaces, 12 concepts) and reports both side by side. The expectation
// is qualitative transfer: concepts recovered rise with m, zero false GAs,
// comparable solve times.

#include <cstdio>

#include "bench/bench_util.h"
#include "core/ground_truth.h"
#include "core/mube.h"
#include "datagen/domain.h"
#include "datagen/generator.h"

using namespace mube;        // NOLINT
using namespace mube::bench; // NOLINT

int main() {
  std::printf("Cross-domain generality — Table 1 on two domains\n");
  std::printf("expected: same qualitative behaviour on books and jobs\n\n");

  for (const char* domain : {"books", "jobs"}) {
    auto found = FindDomain(domain);
    if (!found.ok()) return 1;
    std::printf("domain '%s' (%d concepts, %zu base schemas):\n", domain,
                found.ValueOrDie()->concept_count(),
                found.ValueOrDie()->base_schemas.size());

    GeneratorConfig workload = PaperWorkload(QuickMode() ? 80 : 200);
    workload.domain = domain;
    auto generated = GenerateUniverse(workload);
    if (!generated.ok()) {
      std::fprintf(stderr, "generate: %s\n",
                   generated.status().ToString().c_str());
      return 1;
    }
    const GeneratedUniverse& g = generated.ValueOrDie();

    PrintHeader({"m", "true GAs", "recoverable", "missed", "false GAs",
                 "time(s)"});
    for (size_t m : {10, 20, 30}) {
      MubeConfig config = BenchConfig(g.universe.size(), m);
      auto engine = Mube::Create(&g.universe, config);
      if (!engine.ok()) return 1;
      RunSpec spec;
      spec.seed = m;
      auto result = engine.ValueOrDie()->Run(spec);
      if (!result.ok()) {
        std::printf("%14zu%14s\n", m, "infeas");
        continue;
      }
      const GaQualityReport report = ScoreAgainstConcepts(
          g.universe, result.ValueOrDie().solution, g.num_concepts);
      std::printf("%14zu%14zu%14zu%14zu%14zu%14.2f\n", m,
                  report.true_gas_selected, report.recoverable_concepts,
                  report.true_gas_missed, report.false_gas,
                  result.ValueOrDie().elapsed_seconds);
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  return 0;
}
