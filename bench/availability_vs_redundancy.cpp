// Availability under source faults vs the Redundancy QEF's orientation
// (src/reliability). The paper treats F4's overlap as pure transfer
// overhead; this bench demonstrates the dual reading: overlap is
// *replication*, and replicated schemas keep more of the answer alive when
// sources go down.
//
// Protocol:
//   1. Solve the same universe twice: once with the redundancy weight at 0
//      (overlap-blind selection) and once with a high *inverted* redundancy
//      weight (QefSpec.invert → RedundancyQef rewards overlap).
//   2. Per fault rate f, give every selected source a transient failure
//      probability of f plus a jittery latency tail, so which sources drop
//      out of which query is a fresh draw each time and the retry/breaker
//      machinery is exercised throughout.
//   3. Execute the same full-scan workload through ReliableExecutor and
//      compare ground-truth completeness: rows retained under faults /
//      rows of that arm's own healthy run.
//
// Acceptance (exit code):
//   - at every fault rate >= 0.2 the redundant arm retains strictly more
//     completeness than the w4 = 0 arm;
//   - no query hard-fails while at least one selected source is alive
//     (siblings in the same GAs must keep it answerable — degraded, not
//     failed).

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "common/random.h"
#include "core/mube.h"
#include "datagen/generator.h"
#include "reliability/fault_injector.h"
#include "reliability/reliable_executor.h"

namespace mube {
namespace {

using bench::QuickMode;

struct Arm {
  const char* label;
  SolutionEval solution;
  const SignatureCache* signatures;
  size_t healthy_rows = 0;
};

struct FaultedRun {
  double completeness = 0.0;  // rows retained / healthy rows (ground truth)
  double estimate = 0.0;      // executor's PCSA completeness estimate
  size_t retries = 0;
  size_t short_circuits = 0;
  size_t rescues = 0;
  size_t hard_fail_violations = 0;
};

/// Σ|s| / |∪s| over the selected cooperative sources: how many times each
/// distinct tuple is replicated across the arm's selection.
double ReplicationFactor(const Universe& universe, const Arm& arm) {
  uint64_t sum = 0;
  std::vector<uint32_t> cooperative;
  for (uint32_t sid : arm.solution.sources) {
    if (!arm.signatures->IsCooperative(sid)) continue;
    cooperative.push_back(sid);
    sum += universe.source(sid).cardinality();
  }
  const double union_estimate = arm.signatures->EstimateUnion(cooperative);
  return union_estimate > 0.0 ? static_cast<double>(sum) / union_estimate
                              : 1.0;
}

FaultedRun RunFaulted(const Universe& universe, const Arm& arm,
                      double fault_rate, size_t num_queries,
                      uint64_t replicate) {
  const uint64_t rate_key =
      static_cast<uint64_t>(fault_rate * 100.0) + (replicate << 32);

  // Every selected source is equally flaky: per-attempt transient failure
  // probability = the swept fault rate, plus a jittery latency tail. Which
  // sources drop out of which query is then a fresh draw each time — the
  // acceptance comparison measures redundancy, not one unlucky outage.
  FaultInjector injector(0xBADC0DE ^ rate_key);
  for (uint32_t sid : arm.solution.sources) {
    FaultProfile profile;
    profile.transient_failure_prob = fault_rate;
    profile.extra_latency_ms = 10.0;
    profile.latency_jitter_ms = 30.0;
    profile.slow_tail_prob = 0.05;
    profile.timeout_ms = 5000.0;
    injector.SetProfile(sid, profile);
  }

  // Two attempts per scan: a scan drops out with probability rate², which
  // is what actually stresses failover (three attempts would retry nearly
  // everything back to health and measure only latency). The breaker
  // cooldown is tuned to the ~300 ms simulated query cadence — with the
  // 2 s default an opened breaker would blank a source for the rest of the
  // run, and at rate 0.5 enough simultaneous short-circuits can take every
  // sibling out at once.
  ReliabilityOptions options;
  options.retry.max_attempts = 2;
  options.breaker.open_cooldown_ms = 600.0;
  options.breaker.failure_threshold = 0.6;
  ReliableExecutor executor(universe, arm.solution, options);
  executor.set_fault_injector(&injector);
  executor.set_signature_cache(arm.signatures);

  FaultedRun run;
  size_t rows = 0;
  for (size_t q = 0; q < num_queries; ++q) {
    auto report = executor.Execute(Query{});
    if (!report.ok()) {
      std::fprintf(stderr, "execute: %s\n",
                   report.status().ToString().c_str());
      ++run.hard_fail_violations;
      continue;
    }
    const ExecutionReport& r = report.ValueOrDie();
    rows += r.result.records.size();
    run.estimate = r.completeness_estimate;
    // Transient faults never take the whole selection down; a hard-failed
    // query here means failover is broken.
    if (r.outcome == QueryOutcome::kFailed) ++run.hard_fail_violations;
  }
  if (arm.healthy_rows > 0) {
    run.completeness =
        static_cast<double>(rows) /
        static_cast<double>(arm.healthy_rows * num_queries);
  }
  run.retries = executor.stats().retries;
  run.short_circuits = executor.stats().breaker_short_circuits;
  run.rescues = executor.stats().failover_rescues;
  return run;
}

int Main() {
  const size_t universe_size = QuickMode() ? 80 : 200;
  const size_t num_chosen = 16;
  const size_t num_queries = 5;
  const std::vector<double> fault_rates = {0.1, 0.2, 0.3, 0.5};

  std::printf(
      "Availability vs redundancy: what the (inverted) F4 weight buys when "
      "sources fail\n"
      "universe: %zu sources, m = %zu, %zu full-scan queries per fault "
      "rate\n"
      "expectation: the redundant arm retains strictly more completeness "
      "at fault rates >= 0.2,\n"
      "and no query hard-fails while any selected source is alive\n\n",
      universe_size, num_chosen, num_queries);

  // Overlap must be structurally available for F4's orientation to matter:
  // shrink the tuple pool relative to the summed cardinalities so sources
  // genuinely replicate each other's data (the paper's pool is ~6x the
  // median source; here it is ~3x the largest).
  GeneratorConfig workload = bench::PaperWorkload(universe_size);
  workload.tuple_pool_size = QuickMode() ? 120'000 : 600'000;
  workload.min_cardinality = QuickMode() ? 2'000 : 10'000;
  workload.max_cardinality = QuickMode() ? 40'000 : 200'000;
  auto generated = GenerateUniverse(workload);
  if (!generated.ok()) {
    std::fprintf(stderr, "generate: %s\n",
                 generated.status().ToString().c_str());
    return 1;
  }
  const Universe& universe = generated.ValueOrDie().universe;

  // Arm A: overlap-blind (w4 = 0, weight shifted to coverage/cardinality).
  MubeConfig blind_config = bench::BenchConfig(universe_size, num_chosen);
  blind_config.qefs = {
      {QefSpec::Kind::kMatching, 0.30, "", "", false},
      {QefSpec::Kind::kCardinality, 0.25, "", "", false},
      {QefSpec::Kind::kCoverage, 0.30, "", "", false},
      {QefSpec::Kind::kRedundancy, 0.00, "", "", false},
      {QefSpec::Kind::kCharacteristic, 0.15, "mttf", "wsum", false},
  };
  // Arm B: replication-seeking (high w4, inverted to reward overlap).
  MubeConfig redundant_config = bench::BenchConfig(universe_size, num_chosen);
  redundant_config.qefs = {
      {QefSpec::Kind::kMatching, 0.15, "", "", false},
      {QefSpec::Kind::kCardinality, 0.05, "", "", false},
      {QefSpec::Kind::kCoverage, 0.10, "", "", false},
      {QefSpec::Kind::kRedundancy, 0.60, "", "", true},
      {QefSpec::Kind::kCharacteristic, 0.10, "mttf", "wsum", false},
  };

  Arm arms[2] = {{"w4=0", {}, nullptr}, {"high w4", {}, nullptr}};
  auto blind_engine = Mube::Create(&universe, blind_config);
  auto redundant_engine = Mube::Create(&universe, redundant_config);
  if (!blind_engine.ok() || !redundant_engine.ok()) {
    std::fprintf(stderr, "engine creation failed\n");
    return 1;
  }
  Mube* engines[2] = {blind_engine.ValueOrDie().get(),
                      redundant_engine.ValueOrDie().get()};
  for (int a = 0; a < 2; ++a) {
    RunSpec spec;
    spec.seed = 7;
    auto result = engines[a]->Run(spec);
    if (!result.ok()) {
      std::fprintf(stderr, "solve (%s): %s\n", arms[a].label,
                   result.status().ToString().c_str());
      return 1;
    }
    arms[a].solution = result.ValueOrDie().solution;
    arms[a].signatures = &engines[a]->signatures();

    // Healthy baseline: no injector attached — also checks the zero-fault
    // path reports a fully answered query.
    ReliableExecutor healthy(universe, arms[a].solution);
    auto report = healthy.Execute(Query{});
    if (!report.ok() ||
        report.ValueOrDie().outcome != QueryOutcome::kAnswered) {
      std::fprintf(stderr, "healthy run (%s) not fully answered\n",
                   arms[a].label);
      return 1;
    }
    arms[a].healthy_rows = report.ValueOrDie().result.records.size();
    std::printf("%s: Q = %.4f, replication factor %.2fx, healthy rows %zu\n",
                arms[a].label, arms[a].solution.overall,
                ReplicationFactor(universe, arms[a]), arms[a].healthy_rows);
  }
  std::printf("\n");
  bench::PrintHeader({"fault rate", "comp w4=0", "comp high", "est w4=0",
                      "est high", "retries", "trips", "rescues"});

  bool acceptance_ok = true;
  size_t violations = 0;
  const size_t replicates = 3;  // average out which picks die at each rate
  for (double rate : fault_rates) {
    FaultedRun blind, redundant;
    for (uint64_t r = 0; r < replicates; ++r) {
      FaultedRun b = RunFaulted(universe, arms[0], rate, num_queries, r);
      FaultedRun h = RunFaulted(universe, arms[1], rate, num_queries, r);
      blind.completeness += b.completeness / replicates;
      redundant.completeness += h.completeness / replicates;
      blind.estimate += b.estimate / replicates;
      redundant.estimate += h.estimate / replicates;
      blind.retries += b.retries;
      redundant.retries += h.retries;
      blind.short_circuits += b.short_circuits;
      redundant.short_circuits += h.short_circuits;
      blind.rescues += b.rescues;
      redundant.rescues += h.rescues;
      violations += b.hard_fail_violations + h.hard_fail_violations;
    }
    std::printf("%14.2f%14.4f%14.4f%14.4f%14.4f%14zu%14zu%14zu\n", rate,
                blind.completeness, redundant.completeness, blind.estimate,
                redundant.estimate, blind.retries + redundant.retries,
                blind.short_circuits + redundant.short_circuits,
                blind.rescues + redundant.rescues);
    std::fflush(stdout);
    if (rate >= 0.2 && redundant.completeness <= blind.completeness) {
      acceptance_ok = false;
    }
  }
  if (violations > 0) acceptance_ok = false;

  std::printf(
      "\n%s: redundant selection %s strictly more completeness at fault "
      "rates >= 0.2 (%zu hard-fail violations)\n",
      acceptance_ok ? "PASS" : "FAIL",
      acceptance_ok ? "retains" : "fails to retain", violations);
  return acceptance_ok ? 0 : 1;
}

}  // namespace
}  // namespace mube

int main() { return mube::Main(); }
